#!/bin/sh
# End-to-end smoke for the mobisim service daemon. Three scenes:
#
#   1. cache: submit the same sweep twice to one daemon — responses must
#      be byte-identical, and after the warm submit the metrics must show
#      every run served from cache (cells.computed stays at the cold
#      count, hits covers the whole resubmission).
#
#   2. crash: kill -9 the daemon mid-sweep, check a pending checkpoint
#      and a partial cache were left behind, restart, and wait for the
#      replayed job's artifact — it must be byte-identical to the same
#      scenario swept by an uninterrupted daemon in a fresh root.
#
#   3. stream: a cold `submit --progress --series` must emit at least
#      one per-run result line before the sweep completes (i.e. before
#      the final progress line), the streamed result lines must equal
#      the persisted artifact bytes, per-cell series files must
#      validate, and serve-watch / serve-metrics --prom must answer.
#
# Needs only the built binary: MOBISIM=... overrides the default path.
set -eu

BIN=${MOBISIM:-_build/default/bin/mobisim.exe}
TMP=$(mktemp -d)
PIDS=""

cleanup() {
  for p in $PIDS; do kill -9 "$p" 2>/dev/null || true; done
  rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fail() {
  echo "service_smoke: FAIL: $1" >&2
  exit 1
}

wait_health() { # root socket
  i=0
  until "$BIN" serve-health --root "$1" --socket "$2" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 200 ] && fail "daemon on $2 never became healthy"
    sleep 0.05
  done
}

metric() { # root socket name -> value (0 when absent)
  "$BIN" serve-metrics --root "$1" --socket "$2" \
    | grep -o "\"$3\":[0-9]*" | head -n1 | cut -d: -f2 || true
}

cache_entries() { # root
  find "$1/cache" -name '*.json' 2>/dev/null | wc -l
}

# --- scene 1: double submit is cache-served and byte-identical ----------

cat > "$TMP/sweep.json" <<'EOF'
{"side": 16, "agents": 8, "protocol": ["broadcast", "gossip"],
 "trials": 2, "seed": 7}
EOF
RUNS=4

ROOT_A=$TMP/a
SOCK_A=$TMP/a.sock
"$BIN" serve --quiet --root "$ROOT_A" --socket "$SOCK_A" --jobs 2 &
PIDS="$PIDS $!"
wait_health "$ROOT_A" "$SOCK_A"

"$BIN" submit "$TMP/sweep.json" --root "$ROOT_A" --socket "$SOCK_A" \
  > "$TMP/cold.out"
"$BIN" submit "$TMP/sweep.json" --root "$ROOT_A" --socket "$SOCK_A" \
  > "$TMP/warm.out"
cmp -s "$TMP/cold.out" "$TMP/warm.out" \
  || fail "cold and warm submissions differ"

computed=$(metric "$ROOT_A" "$SOCK_A" service.cells.computed)
hits=$(metric "$ROOT_A" "$SOCK_A" service.cache.hits)
[ "${computed:-0}" -eq "$RUNS" ] \
  || fail "expected $RUNS computed runs after both submits, got '$computed'"
[ "${hits:-0}" -eq "$RUNS" ] \
  || fail "warm submit should hit the cache $RUNS times, got '$hits'"

"$BIN" serve-stop --root "$ROOT_A" --socket "$SOCK_A" > /dev/null
echo "service_smoke: cache scene ok (runs=$RUNS, warm hits=$hits)"

# --- scene 2: kill -9 mid-sweep, resume byte-identically ----------------

# one slow cell, many trials: the sweep takes long enough that the
# partial-cache window after the first finished run is easy to hit
cat > "$TMP/slow.json" <<'EOF'
{"side": 192, "agents": 8, "trials": 8, "seed": 11}
EOF
SLOW_RUNS=8

ROOT_B=$TMP/b
SOCK_B=$TMP/b.sock
"$BIN" serve --quiet --root "$ROOT_B" --socket "$SOCK_B" --jobs 2 &
DAEMON_B=$!
PIDS="$PIDS $DAEMON_B"
wait_health "$ROOT_B" "$SOCK_B"

"$BIN" submit "$TMP/slow.json" --root "$ROOT_B" --socket "$SOCK_B" \
  > /dev/null 2>&1 &
PIDS="$PIDS $!"

i=0
while [ "$(cache_entries "$ROOT_B")" -lt 1 ]; do
  i=$((i + 1))
  [ "$i" -gt 3000 ] && fail "no cache entry ever appeared in the slow sweep"
  sleep 0.02
done
kill -9 "$DAEMON_B"
wait "$DAEMON_B" 2>/dev/null || true

partial=$(cache_entries "$ROOT_B")
[ "$partial" -lt "$SLOW_RUNS" ] \
  || fail "sweep finished before the kill; pick a slower scenario"
pending=$(find "$ROOT_B/pending" -name '*.json' | wc -l)
[ "$pending" -eq 1 ] \
  || fail "expected exactly one pending checkpoint after the kill, got $pending"
[ -z "$(find "$ROOT_B/results" -name '*.ndjson' 2>/dev/null)" ] \
  || fail "artifact exists even though the sweep was killed"

"$BIN" serve --quiet --root "$ROOT_B" --socket "$SOCK_B" --jobs 2 &
PIDS="$PIDS $!"
wait_health "$ROOT_B" "$SOCK_B"

i=0
while [ "$(find "$ROOT_B/pending" -name '*.json' | wc -l)" -gt 0 ]; do
  i=$((i + 1))
  [ "$i" -gt 6000 ] && fail "replayed job never finished"
  sleep 0.05
done
ARTIFACT_B=$(find "$ROOT_B/results" -name '*.ndjson')
[ -n "$ARTIFACT_B" ] || fail "no artifact after the replayed job finished"

ROOT_C=$TMP/c
SOCK_C=$TMP/c.sock
"$BIN" serve --quiet --root "$ROOT_C" --socket "$SOCK_C" --jobs 2 &
PIDS="$PIDS $!"
wait_health "$ROOT_C" "$SOCK_C"
"$BIN" submit "$TMP/slow.json" --root "$ROOT_C" --socket "$SOCK_C" > /dev/null
ARTIFACT_C=$(find "$ROOT_C/results" -name '*.ndjson')

cmp -s "$ARTIFACT_B" "$ARTIFACT_C" \
  || fail "resumed artifact differs from the uninterrupted run"

"$BIN" serve-stop --root "$ROOT_B" --socket "$SOCK_B" > /dev/null
"$BIN" serve-stop --root "$ROOT_C" --socket "$SOCK_C" > /dev/null
echo "service_smoke: crash scene ok (cached at kill: $partial/$SLOW_RUNS)"

# --- scene 3: streaming submit, series artifacts, live introspection ----

ROOT_D=$TMP/d
SOCK_D=$TMP/d.sock
"$BIN" serve --quiet --root "$ROOT_D" --socket "$SOCK_D" --jobs 2 &
PIDS="$PIDS $!"
wait_health "$ROOT_D" "$SOCK_D"

# cold streaming submit with per-cell series recording
"$BIN" submit "$TMP/sweep.json" --root "$ROOT_D" --socket "$SOCK_D" \
  --progress --series > "$TMP/stream.out"

# at least one result line must land before the sweep completes: its
# line number precedes the final progress line's
first_result=$(grep -n '"result"' "$TMP/stream.out" | head -n1 | cut -d: -f1)
last_progress=$(grep -n '"progress"' "$TMP/stream.out" | tail -n1 | cut -d: -f1)
[ -n "$first_result" ] || fail "streaming submit emitted no result lines"
[ -n "$last_progress" ] || fail "streaming submit emitted no progress lines"
[ "$first_result" -lt "$last_progress" ] \
  || fail "no result line was streamed before sweep completion"

# the streamed result lines are exactly the persisted artifact bytes
ARTIFACT_D=$(find "$ROOT_D/results" -name '*.ndjson')
[ -n "$ARTIFACT_D" ] || fail "streaming submit left no artifact"
grep '"result"' "$TMP/stream.out" > "$TMP/stream_results.out"
cmp -s "$TMP/stream_results.out" "$ARTIFACT_D" \
  || fail "streamed result lines differ from the artifact"

# ... and byte-identical to a plain (non-streaming) submit's body
"$BIN" submit "$TMP/sweep.json" --root "$ROOT_D" --socket "$SOCK_D" \
  > "$TMP/plain.out"
tail -n +2 "$TMP/plain.out" > "$TMP/plain_results.out"
cmp -s "$TMP/stream_results.out" "$TMP/plain_results.out" \
  || fail "streamed result lines differ from the non-streaming body"

# per-cell series artifacts exist and validate
n_series=$(find "$ROOT_D/series" -name '*.series.json' | wc -l)
[ "$n_series" -eq 2 ] \
  || fail "expected 2 per-cell series artifacts, got $n_series"
for f in "$ROOT_D"/series/*.series.json; do
  "$BIN" validate-metrics "$f" > /dev/null \
    || fail "series artifact $f does not validate"
done

# live introspection: watch streams the asked-for snapshot count, and
# the Prometheus rendering is scrapable text
watch_lines=$("$BIN" serve-watch --root "$ROOT_D" --socket "$SOCK_D" \
  --interval-ms 50 --count 2 | wc -l)
[ "$watch_lines" -eq 2 ] \
  || fail "serve-watch --count 2 produced $watch_lines lines"
"$BIN" serve-metrics --prom --root "$ROOT_D" --socket "$SOCK_D" \
  | grep -q '^# TYPE mobisim_' \
  || fail "serve-metrics --prom produced no exposition lines"

"$BIN" serve-stop --root "$ROOT_D" --socket "$SOCK_D" > /dev/null
echo "service_smoke: stream scene ok (first result at line $first_result, series files: $n_series)"
echo "service_smoke: OK"
