(* Tests for the experiment harness: tables, results, sweeps and the
   registry. *)

module Table = Experiments.Table
module Exp_result = Experiments.Exp_result
module Sweep = Experiments.Sweep
module Registry = Experiments.Registry
module Config = Mobile_network.Config

(* --- Table --- *)

let test_table_basics () =
  let t = Table.create ~header:[ "a"; "b" ] in
  Alcotest.(check int) "no rows" 0 (Table.row_count t);
  Table.add_row t [ "1"; "x" ];
  Table.add_row t [ "2"; "y" ];
  Alcotest.(check int) "two rows" 2 (Table.row_count t)

let test_table_arity_errors () =
  Alcotest.check_raises "empty header"
    (Invalid_argument "Table.create: empty header") (fun () ->
      ignore (Table.create ~header:[]));
  let t = Table.create ~header:[ "a"; "b" ] in
  Alcotest.check_raises "short row"
    (Invalid_argument "Table.add_row: arity mismatch with header") (fun () ->
      Table.add_row t [ "1" ])

let test_table_render () =
  let t = Table.create ~header:[ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1.25" ];
  Table.add_row t [ "b"; "300" ];
  let buf = Buffer.create 128 in
  let fmt = Format.formatter_of_buffer buf in
  Table.render fmt t;
  Format.pp_print_flush fmt ();
  let s = Buffer.contents buf in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has header" true (contains "name");
  Alcotest.(check bool) "has data" true (contains "alpha");
  Alcotest.(check bool) "has separators" true (contains "+--");
  (* numeric cells are right-aligned: "  300" appears with leading pad *)
  Alcotest.(check bool) "right-aligns numbers" true (contains " 300 ")

let test_table_rows_render_in_insertion_order () =
  let t = Table.create ~header:[ "v" ] in
  Table.add_row t [ "first" ];
  Table.add_row t [ "second" ];
  let buf = Buffer.create 64 in
  let fmt = Format.formatter_of_buffer buf in
  Table.render fmt t;
  Format.pp_print_flush fmt ();
  let s = Buffer.contents buf in
  let idx sub =
    let n = String.length s and m = String.length sub in
    let rec go i = if i + m > n then -1 else if String.sub s i m = sub then i else go (i + 1) in
    go 0
  in
  Alcotest.(check bool) "order preserved" true (idx "first" < idx "second")

let test_table_csv () =
  let t = Table.create ~header:[ "k"; "note" ] in
  Table.add_row t [ "1"; "plain" ];
  Table.add_row t [ "2"; "has,comma" ];
  Table.add_row t [ "3"; "has\"quote" ];
  let csv = Table.to_csv t in
  Alcotest.(check string) "csv escaping"
    "k,note\n1,plain\n2,\"has,comma\"\n3,\"has\"\"quote\"\n" csv

let test_cells () =
  Alcotest.(check string) "int" "42" (Table.cell_int 42);
  Alcotest.(check string) "float" "3.14" (Table.cell_float 3.14159);
  Alcotest.(check string) "float decimals" "3.1416"
    (Table.cell_float ~decimals:4 3.14159);
  Alcotest.(check string) "huge float uses %g" "1.23e+08"
    (Table.cell_float 1.23e8);
  Alcotest.(check string) "nan" "nan" (Table.cell_float Float.nan);
  Alcotest.(check string) "bool" "yes" (Table.cell_bool true);
  Alcotest.(check string) "bool no" "no" (Table.cell_bool false)

(* --- Exp_result --- *)

let dummy_result checks =
  {
    Exp_result.id = "T0";
    title = "test";
    claim = "claim";
    table = Table.create ~header:[ "x" ];
    findings = [ "finding" ];
    figures = [];
    checks;
  }

let test_check_in_range () =
  let c = Exp_result.check_in_range ~label:"v" ~value:0.5 ~lo:0. ~hi:1. in
  Alcotest.(check bool) "inside passes" true c.Exp_result.passed;
  let c2 = Exp_result.check_in_range ~label:"v" ~value:1.5 ~lo:0. ~hi:1. in
  Alcotest.(check bool) "outside fails" false c2.Exp_result.passed;
  let c3 = Exp_result.check_in_range ~label:"v" ~value:1.0 ~lo:0. ~hi:1. in
  Alcotest.(check bool) "boundary passes" true c3.Exp_result.passed

let test_all_passed () =
  let pass = Exp_result.check ~label:"a" ~passed:true ~detail:"" in
  let fail = Exp_result.check ~label:"b" ~passed:false ~detail:"" in
  Alcotest.(check bool) "all pass" true
    (Exp_result.all_passed (dummy_result [ pass; pass ]));
  Alcotest.(check bool) "one fail" false
    (Exp_result.all_passed (dummy_result [ pass; fail ]));
  Alcotest.(check bool) "vacuous" true (Exp_result.all_passed (dummy_result []))

let test_render_shows_status () =
  let r =
    dummy_result
      [
        Exp_result.check ~label:"good" ~passed:true ~detail:"d1";
        Exp_result.check ~label:"bad" ~passed:false ~detail:"d2";
      ]
  in
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Exp_result.render fmt r;
  Format.pp_print_flush fmt ();
  let s = Buffer.contents buf in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "PASS shown" true (contains "[PASS] good");
  Alcotest.(check bool) "FAIL shown" true (contains "[FAIL] bad");
  Alcotest.(check bool) "claim shown" true (contains "Paper claim: claim")

(* --- Sweep --- *)

let test_doublings () =
  Alcotest.(check (list int)) "doublings" [ 3; 6; 12; 24 ]
    (Sweep.doublings ~from:3 ~count:4);
  Alcotest.(check (list int)) "empty" [] (Sweep.doublings ~from:1 ~count:0);
  Alcotest.check_raises "bad from" (Invalid_argument "Sweep.doublings: from <= 0")
    (fun () -> ignore (Sweep.doublings ~from:0 ~count:2))

let test_geometric () =
  let g = Sweep.geometric ~from:1. ~factor:2. ~count:4 in
  Alcotest.(check int) "length" 4 (List.length g);
  List.iteri
    (fun i v ->
      Alcotest.(check bool) "value" true
        (Float.abs (v -. (2. ** float_of_int i)) < 1e-9))
    g;
  Alcotest.check_raises "factor <= 1"
    (Invalid_argument "Sweep.geometric: factor <= 1") (fun () ->
      ignore (Sweep.geometric ~from:1. ~factor:1. ~count:2))

let test_median () =
  Alcotest.(check bool) "odd" true (Sweep.median [| 3.; 1.; 2. |] = 2.);
  Alcotest.(check bool) "even interpolates" true
    (Sweep.median [| 1.; 2.; 3.; 4. |] = 2.5)

let test_completion_times () =
  let measured =
    Sweep.completion_times ~trials:4 ~cfg:(fun ~trial ->
        Config.make ~side:10 ~agents:4 ~seed:1 ~trial ())
  in
  Alcotest.(check int) "four samples" 4 (Array.length measured.Sweep.times);
  Alcotest.(check int) "no timeouts" 0 measured.Sweep.timeouts;
  Array.iter
    (fun t -> Alcotest.(check bool) "positive time" true (t >= 0.))
    measured.Sweep.times;
  (* timeouts counted *)
  let capped =
    Sweep.completion_times ~trials:3 ~cfg:(fun ~trial ->
        Config.make ~side:30 ~agents:2 ~seed:1 ~trial ~max_steps:2 ())
  in
  Alcotest.(check int) "all timed out" 3 capped.Sweep.timeouts;
  Alcotest.check_raises "trials <= 0"
    (Invalid_argument "Sweep.completion_times: trials <= 0") (fun () ->
      ignore
        (Sweep.completion_times ~trials:0 ~cfg:(fun ~trial:_ ->
             Config.make ~side:4 ~agents:1 ())))

let test_completion_times_deterministic () =
  let go () =
    (Sweep.completion_times ~trials:3 ~cfg:(fun ~trial ->
         Config.make ~side:12 ~agents:5 ~seed:7 ~trial ()))
      .Sweep.times
  in
  Alcotest.(check (array (float 0.))) "reproducible" (go ()) (go ())

let test_probability () =
  let p = Sweep.probability ~trials:10 ~f:(fun ~trial -> trial mod 2 = 0) in
  Alcotest.(check bool) "half" true (Float.abs (p -. 0.5) < 1e-9);
  Alcotest.(check bool) "all" true
    (Sweep.probability ~trials:5 ~f:(fun ~trial:_ -> true) = 1.)

(* --- Ascii_plot --- *)

module Plot = Experiments.Ascii_plot

let plot_lines s = String.split_on_char '\n' (String.trim s)

let test_plot_layout () =
  let s =
    Plot.render ~width:20 ~height:5 ~title:"T" ~x_label:"x" ~y_label:"y"
      [ { Plot.label = "s"; marker = '*'; points = [ (1., 1.); (10., 100.) ] } ]
  in
  match plot_lines s with
  | title :: rest ->
      Alcotest.(check string) "title" "T" title;
      (* 5 canvas rows + 1 axis note + 1 legend line *)
      Alcotest.(check int) "rows" 7 (List.length rest);
      List.iteri
        (fun i row ->
          if i < 5 then Alcotest.(check int) "canvas width" 20 (String.length row))
        rest
  | [] -> Alcotest.fail "empty plot"

let test_plot_extremes_placed () =
  let s =
    Plot.render ~width:21 ~height:5 ~log_x:false ~log_y:false ~title:"T"
      ~x_label:"x" ~y_label:"y"
      [ { Plot.label = "s"; marker = '*'; points = [ (0., 0.); (1., 1.) ] } ]
  in
  (match plot_lines s with
  | _ :: first_canvas :: _ ->
      (* largest y renders on the top row, at the right edge *)
      Alcotest.(check char) "top-right marker" '*'
        first_canvas.[String.length first_canvas - 1]
  | _ -> Alcotest.fail "missing canvas");
  match List.rev (plot_lines s) with
  | _legend :: _axis :: last_canvas :: _ ->
      Alcotest.(check char) "bottom-left marker" '*' last_canvas.[0]
  | _ -> Alcotest.fail "missing rows"

let test_plot_log_filters_nonpositive () =
  let s =
    Plot.render ~title:"T" ~x_label:"x" ~y_label:"y"
      [
        { Plot.label = "s"; marker = '*';
          points = [ (0., 5.); (-1., 5.); (10., 0.); (10., 100.) ] };
      ]
  in
  (* only (10, 100) survives; single point renders without crashing *)
  Alcotest.(check bool) "marker present" true (String.contains s '*');
  Alcotest.check_raises "all filtered"
    (Invalid_argument "Ascii_plot.render: no plottable points") (fun () ->
      ignore
        (Plot.render ~title:"T" ~x_label:"x" ~y_label:"y"
           [ { Plot.label = "s"; marker = '*'; points = [ (0., 1.) ] } ]))

let test_plot_legend_and_series () =
  let s =
    Plot.render ~log_x:false ~log_y:false ~title:"T" ~x_label:"xx" ~y_label:"yy"
      [
        { Plot.label = "alpha"; marker = 'a'; points = [ (0., 0.) ] };
        { Plot.label = "beta"; marker = 'b'; points = [ (1., 1.) ] };
      ]
  in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "legend alpha" true (contains "a = alpha");
  Alcotest.(check bool) "legend beta" true (contains "b = beta");
  Alcotest.(check bool) "axis labels" true (contains "xx" && contains "yy")

let test_plot_invalid_canvas () =
  Alcotest.check_raises "tiny canvas"
    (Invalid_argument "Ascii_plot.render: canvas too small") (fun () ->
      ignore
        (Plot.render ~width:1 ~title:"T" ~x_label:"x" ~y_label:"y"
           [ { Plot.label = "s"; marker = '*'; points = [ (1., 1.) ] } ]))

(* --- Registry --- *)

let test_registry_complete () =
  Alcotest.(check int) "32 experiments" 32 (List.length Registry.all);
  let ids = Registry.ids () in
  let unique = List.sort_uniq compare ids in
  Alcotest.(check int) "ids unique" (List.length ids) (List.length unique);
  List.iter
    (fun id ->
      Alcotest.(check bool)
        (Printf.sprintf "%s registered" id)
        true
        (Option.is_some (Registry.find id)))
    [ "E1"; "E2"; "E3"; "E4"; "E5"; "E6"; "E7"; "E8"; "E9"; "E10"; "E11";
      "E12"; "E13"; "E14"; "E15"; "E16"; "A1"; "A2"; "A3"; "F1"; "F2"; "F3";
      "X1"; "X2"; "X3"; "X4"; "X5"; "L1"; "L2"; "L3"; "L4"; "L5" ]

let test_registry_case_insensitive () =
  Alcotest.(check bool) "lowercase works" true
    (Option.is_some (Registry.find "e1"));
  Alcotest.(check bool) "unknown absent" true
    (Option.is_none (Registry.find "E99"))

let () =
  Alcotest.run "harness"
    [
      ( "table",
        [
          Alcotest.test_case "basics" `Quick test_table_basics;
          Alcotest.test_case "arity errors" `Quick test_table_arity_errors;
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "row order" `Quick
            test_table_rows_render_in_insertion_order;
          Alcotest.test_case "csv" `Quick test_table_csv;
          Alcotest.test_case "cell formatting" `Quick test_cells;
        ] );
      ( "exp_result",
        [
          Alcotest.test_case "check_in_range" `Quick test_check_in_range;
          Alcotest.test_case "all_passed" `Quick test_all_passed;
          Alcotest.test_case "render status" `Quick test_render_shows_status;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "doublings" `Quick test_doublings;
          Alcotest.test_case "geometric" `Quick test_geometric;
          Alcotest.test_case "median" `Quick test_median;
          Alcotest.test_case "completion times" `Quick test_completion_times;
          Alcotest.test_case "deterministic" `Quick
            test_completion_times_deterministic;
          Alcotest.test_case "probability" `Quick test_probability;
        ] );
      ( "ascii_plot",
        [
          Alcotest.test_case "layout" `Quick test_plot_layout;
          Alcotest.test_case "extremes placed" `Quick
            test_plot_extremes_placed;
          Alcotest.test_case "log filtering" `Quick
            test_plot_log_filters_nonpositive;
          Alcotest.test_case "legend" `Quick test_plot_legend_and_series;
          Alcotest.test_case "invalid canvas" `Quick test_plot_invalid_canvas;
        ] );
      ( "registry",
        [
          Alcotest.test_case "complete" `Quick test_registry_complete;
          Alcotest.test_case "case insensitive" `Quick
            test_registry_case_insensitive;
        ] );
    ]
