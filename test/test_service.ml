(* Service-layer suite: store round-trip and counters, runner
   cache-correctness (cold = warm = any --jobs, bytes included),
   partial-cache resume, and checkpoint bookkeeping. Everything runs
   in-process against temp directories — the socket daemon itself is
   exercised end-to-end by test/service_smoke.sh. *)

module Compile = Scenario.Compile
module Store = Service.Store
module Checkpoint = Service.Checkpoint
module Runner = Service.Runner

let with_temp_dir fn =
  let root = Filename.temp_file "mobisim_service" "" in
  Sys.remove root;
  Sys.mkdir root 0o755;
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command ("rm -rf " ^ Filename.quote root)))
    (fun () -> fn root)

let compile_exn text =
  match Compile.compile text with
  | Ok c -> c
  | Error errs -> Alcotest.failf "compile failed: %s" (String.concat "; " errs)

let sweep_text =
  {|{"side": 12, "agents": 6, "protocol": ["broadcast", "gossip"],
     "trials": 2, "seed": 3}|}

let run_fresh ~jobs ?metrics text =
  with_temp_dir (fun root ->
      let store = Store.create ?metrics ~root () in
      Runtime.Pool.with_pool ~jobs (fun pool ->
          Runner.run ?metrics ~pool ~store (compile_exn text)))

(* ---- store -------------------------------------------------------------- *)

let test_store_roundtrip () =
  with_temp_dir (fun root ->
      let store = Store.create ~root () in
      Alcotest.(check (option string))
        "miss before put" None
        (Store.get store ~hash:"aaaa" ~seed:1 ~trial:0);
      Store.put store ~hash:"aaaa" ~seed:1 ~trial:0 "{\"x\":1}";
      Alcotest.(check (option string))
        "hit after put" (Some "{\"x\":1}")
        (Store.get store ~hash:"aaaa" ~seed:1 ~trial:0);
      Alcotest.(check (option string))
        "distinct trial is a distinct key" None
        (Store.get store ~hash:"aaaa" ~seed:1 ~trial:1);
      Alcotest.(check int) "2 misses" 2 (Store.misses store);
      Alcotest.(check int) "1 hit" 1 (Store.hits store))

let test_store_counters_in_registry () =
  with_temp_dir (fun root ->
      let reg = Obs.Registry.create () in
      let store = Store.create ~metrics:(Obs.Sink.of_registry reg) ~root () in
      ignore (Store.get store ~hash:"h" ~seed:0 ~trial:0);
      Store.put store ~hash:"h" ~seed:0 ~trial:0 "p";
      ignore (Store.get store ~hash:"h" ~seed:0 ~trial:0);
      let counter name =
        Obs.Metric.Counter.value (Obs.Registry.counter reg name)
      in
      Alcotest.(check int) "hits counter" 1 (counter "service.cache.hits");
      Alcotest.(check int) "misses counter" 1 (counter "service.cache.misses"))

(* ---- runner ------------------------------------------------------------- *)

let test_runner_jobs_independent () =
  let b1 = run_fresh ~jobs:1 sweep_text in
  let b2 = run_fresh ~jobs:2 sweep_text in
  Alcotest.(check string) "jobs=1 and jobs=2 bodies byte-identical" b1 b2

let test_runner_warm_cache () =
  with_temp_dir (fun root ->
      let reg = Obs.Registry.create () in
      let metrics = Obs.Sink.of_registry reg in
      let store = Store.create ~metrics ~root () in
      let compiled = compile_exn sweep_text in
      let computed () =
        Obs.Metric.Counter.value
          (Obs.Registry.counter reg "service.cells.computed")
      in
      Runtime.Pool.with_pool ~jobs:2 (fun pool ->
          let cold = Runner.run ~metrics ~pool ~store compiled in
          let after_cold = computed () in
          Alcotest.(check int) "cold run computed every run"
            (Compile.total_runs compiled) after_cold;
          let warm = Runner.run ~metrics ~pool ~store compiled in
          Alcotest.(check string) "warm body byte-identical to cold" cold warm;
          Alcotest.(check int) "warm run computed nothing" after_cold
            (computed ())))

let test_runner_partial_cache_resume () =
  (* a trials=1 run pre-populates every cell's trial-0 entry; the full
     trials=2 run over the same store must still produce exactly the
     bytes of an uninterrupted run — the checkpoint-replay property *)
  let full_fresh = run_fresh ~jobs:2 sweep_text in
  with_temp_dir (fun root ->
      let store = Store.create ~root () in
      let half =
        compile_exn
          {|{"side": 12, "agents": 6, "protocol": ["broadcast", "gossip"],
             "trials": 1, "seed": 3}|}
      in
      Runtime.Pool.with_pool ~jobs:2 (fun pool ->
          let (_ : string) = Runner.run ~pool ~store half in
          let resumed = Runner.run ~pool ~store (compile_exn sweep_text) in
          Alcotest.(check string)
            "resume over a partial cache = uninterrupted run" full_fresh
            resumed;
          Alcotest.(check int)
            "the pre-populated trial-0 entries were reused" 2
            (Store.hits store)))

let test_runner_progress_order () =
  with_temp_dir (fun root ->
      let store = Store.create ~root () in
      let compiled = compile_exn sweep_text in
      let seen = ref [] in
      Runtime.Pool.with_pool ~jobs:2 (fun pool ->
          let (_ : string) =
            Runner.run
              ~on_progress:(fun ~done_ ~total -> seen := (done_, total) :: !seen)
              ~pool ~store compiled
          in
          ());
      let total = Compile.total_runs compiled in
      Alcotest.(check (list (pair int int)))
        "progress counts every run once, in order"
        (List.init total (fun i -> (i + 1, total)))
        (List.rev !seen))

let test_runner_streaming () =
  (* the streamed lines, concatenated, must equal the returned body —
     at any jobs count, cold or warm *)
  List.iter
    (fun jobs ->
      with_temp_dir (fun root ->
          let store = Store.create ~root () in
          let compiled = compile_exn sweep_text in
          Runtime.Pool.with_pool ~jobs (fun pool ->
              let streamed = Buffer.create 256 in
              let cold =
                Runner.run
                  ~on_line:(Buffer.add_string streamed)
                  ~pool ~store compiled
              in
              Alcotest.(check string)
                (Printf.sprintf "cold streamed lines = body at jobs=%d" jobs)
                cold (Buffer.contents streamed);
              Buffer.clear streamed;
              let warm =
                Runner.run
                  ~on_line:(Buffer.add_string streamed)
                  ~pool ~store compiled
              in
              Alcotest.(check string)
                (Printf.sprintf "warm streamed lines = body at jobs=%d" jobs)
                warm (Buffer.contents streamed);
              Alcotest.(check string) "warm body = cold body" cold warm)))
    [ 1; 2 ]

let test_runner_series_dir () =
  with_temp_dir (fun root ->
      let store = Store.create ~root () in
      let compiled = compile_exn sweep_text in
      let dir = Filename.concat root "series" in
      Runtime.Pool.with_pool ~jobs:2 (fun pool ->
          let plain = Runner.run ~pool ~store compiled in
          let with_series = Runner.run ~series_dir:dir ~pool ~store compiled in
          Alcotest.(check string)
            "series recording leaves the body untouched" plain with_series);
      List.iter
        (fun cell ->
          let path =
            Filename.concat dir (Scenario.Ast.cell_hash cell ^ ".series.json")
          in
          Alcotest.(check bool)
            (Printf.sprintf "series artifact exists for %s"
               (Scenario.Ast.cell_hash cell))
            true (Sys.file_exists path);
          let ic = open_in_bin path in
          let text = really_input_string ic (in_channel_length ic) in
          close_in ic;
          match Obs.Series.parse text with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "series artifact invalid: %s" e)
        compiled.Compile.cells)

let test_run_payload_deterministic () =
  let compiled = compile_exn sweep_text in
  let cell = List.hd compiled.Compile.cells in
  Alcotest.(check string)
    "same (cell, seed, trial) twice gives identical payloads"
    (Runner.run_payload cell ~seed:3 ~trial:1)
    (Runner.run_payload cell ~seed:3 ~trial:1)

(* ---- checkpoints -------------------------------------------------------- *)

let test_checkpoint_lifecycle () =
  with_temp_dir (fun root ->
      Alcotest.(check int)
        "empty root has no pending jobs" 0
        (List.length (Checkpoint.list_pending ~root));
      Checkpoint.write ~root ~id:"bbb" ~text:"{\"agents\": 2}";
      Checkpoint.write ~root ~id:"aaa" ~text:"{}";
      Alcotest.(check (list (pair string string)))
        "pending jobs listed sorted by id"
        [ ("aaa", "{}"); ("bbb", "{\"agents\": 2}") ]
        (Checkpoint.list_pending ~root);
      Checkpoint.remove ~root ~id:"aaa";
      Checkpoint.remove ~root ~id:"aaa";
      Alcotest.(check (list (pair string string)))
        "remove is idempotent"
        [ ("bbb", "{\"agents\": 2}") ]
        (Checkpoint.list_pending ~root))

let () =
  Alcotest.run "service"
    [
      ( "store",
        [
          Alcotest.test_case "round-trip and counters" `Quick
            test_store_roundtrip;
          Alcotest.test_case "registry counters" `Quick
            test_store_counters_in_registry;
        ] );
      ( "runner",
        [
          Alcotest.test_case "jobs-independent bytes" `Quick
            test_runner_jobs_independent;
          Alcotest.test_case "warm cache byte-identical, no recompute" `Quick
            test_runner_warm_cache;
          Alcotest.test_case "partial-cache resume" `Quick
            test_runner_partial_cache_resume;
          Alcotest.test_case "progress ordering" `Quick
            test_runner_progress_order;
          Alcotest.test_case "streamed lines = body" `Quick
            test_runner_streaming;
          Alcotest.test_case "per-cell series artifacts" `Quick
            test_runner_series_dir;
          Alcotest.test_case "payload determinism" `Quick
            test_run_payload_deterministic;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "lifecycle" `Quick test_checkpoint_lifecycle;
        ] );
    ]
