(* Unit and property tests for the Dsu (union-find) module. *)

let test_create () =
  let d = Dsu.create 5 in
  Alcotest.(check int) "length" 5 (Dsu.length d);
  Alcotest.(check int) "initial sets" 5 (Dsu.set_count d);
  for i = 0 to 4 do
    Alcotest.(check int) "own representative" i (Dsu.find d i);
    Alcotest.(check int) "singleton size" 1 (Dsu.set_size d i)
  done;
  Alcotest.check_raises "negative size"
    (Invalid_argument "Dsu.create: negative size") (fun () ->
      ignore (Dsu.create (-1)))

let test_empty () =
  let d = Dsu.create 0 in
  Alcotest.(check int) "no sets" 0 (Dsu.set_count d);
  Alcotest.(check int) "max set empty" 0 (Dsu.max_set_size d)

let test_union_basics () =
  let d = Dsu.create 6 in
  Alcotest.(check bool) "first union merges" true (Dsu.union d 0 1);
  Alcotest.(check bool) "repeat union no-op" false (Dsu.union d 0 1);
  Alcotest.(check bool) "same set" true (Dsu.same_set d 0 1);
  Alcotest.(check bool) "others unaffected" false (Dsu.same_set d 0 2);
  Alcotest.(check int) "set count" 5 (Dsu.set_count d);
  Alcotest.(check int) "merged size" 2 (Dsu.set_size d 0);
  Alcotest.(check int) "merged size via other" 2 (Dsu.set_size d 1)

let test_transitivity () =
  let d = Dsu.create 8 in
  ignore (Dsu.union d 0 1);
  ignore (Dsu.union d 2 3);
  ignore (Dsu.union d 1 2);
  Alcotest.(check bool) "0 ~ 3 by transitivity" true (Dsu.same_set d 0 3);
  Alcotest.(check int) "size 4" 4 (Dsu.set_size d 3);
  Alcotest.(check int) "5 sets remain" 5 (Dsu.set_count d)

let test_self_union () =
  let d = Dsu.create 3 in
  Alcotest.(check bool) "self union is no-op" false (Dsu.union d 1 1);
  Alcotest.(check int) "still singleton" 1 (Dsu.set_size d 1)

let test_out_of_range () =
  let d = Dsu.create 3 in
  Alcotest.check_raises "find out of range"
    (Invalid_argument "Dsu: element out of range") (fun () ->
      ignore (Dsu.find d 3));
  Alcotest.check_raises "union out of range"
    (Invalid_argument "Dsu: element out of range") (fun () ->
      ignore (Dsu.union d 0 (-1)))

let test_reset () =
  let d = Dsu.create 4 in
  ignore (Dsu.union d 0 1);
  ignore (Dsu.union d 2 3);
  Dsu.reset d;
  Alcotest.(check int) "back to singletons" 4 (Dsu.set_count d);
  for i = 0 to 3 do
    Alcotest.(check int) "own rep after reset" i (Dsu.find d i);
    Alcotest.(check int) "size 1 after reset" 1 (Dsu.set_size d i)
  done

let test_max_set_size () =
  let d = Dsu.create 10 in
  Alcotest.(check int) "all singletons" 1 (Dsu.max_set_size d);
  ignore (Dsu.union d 0 1);
  ignore (Dsu.union d 1 2);
  ignore (Dsu.union d 5 6);
  Alcotest.(check int) "largest is 3" 3 (Dsu.max_set_size d)

let test_groups () =
  let d = Dsu.create 5 in
  ignore (Dsu.union d 0 3);
  ignore (Dsu.union d 3 4);
  let groups = Dsu.groups d in
  let found = ref [] in
  Array.iter
    (fun members -> if members <> [] then found := members :: !found)
    groups;
  let sorted = List.sort compare !found in
  Alcotest.(check (list (list int))) "groups partition"
    [ [ 0; 3; 4 ]; [ 1 ]; [ 2 ] ]
    sorted

let test_iter_sets () =
  let d = Dsu.create 6 in
  ignore (Dsu.union d 1 2);
  ignore (Dsu.union d 4 5);
  let seen = ref [] in
  Dsu.iter_sets d ~f:(fun ~representative ~members ->
      Alcotest.(check bool) "rep is a member" true (List.mem representative members);
      seen := members @ !seen);
  let all = List.sort compare !seen in
  Alcotest.(check (list int)) "every element exactly once" [ 0; 1; 2; 3; 4; 5 ]
    all

let test_members_sorted () =
  let d = Dsu.create 7 in
  ignore (Dsu.union d 6 0);
  ignore (Dsu.union d 3 6);
  Dsu.iter_sets d ~f:(fun ~representative:_ ~members ->
      let sorted = List.sort compare members in
      Alcotest.(check (list int)) "members increasing" sorted members)

(* --- qcheck properties --- *)

(* Build a random union script and compare against a naive quadratic
   implementation. *)
let naive_components n unions =
  let comp = Array.init n (fun i -> i) in
  List.iter
    (fun (i, j) ->
      let ci = comp.(i) and cj = comp.(j) in
      if ci <> cj then
        Array.iteri (fun idx c -> if c = cj then comp.(idx) <- ci) comp)
    unions;
  comp

let unions_gen n = Qgen.unions n

let prop_matches_naive =
  let n = 12 in
  QCheck.Test.make ~name:"matches naive component computation" ~count:300
    (unions_gen n) (fun unions ->
      let d = Dsu.create n in
      List.iter (fun (i, j) -> ignore (Dsu.union d i j)) unions;
      let naive = naive_components n unions in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let same_naive = naive.(i) = naive.(j) in
          if Dsu.same_set d i j <> same_naive then ok := false
        done
      done;
      !ok)

let prop_set_count_invariant =
  let n = 15 in
  QCheck.Test.make ~name:"set_count = n - successful unions" ~count:300
    (unions_gen n) (fun unions ->
      let d = Dsu.create n in
      let merges =
        List.fold_left
          (fun acc (i, j) -> if Dsu.union d i j then acc + 1 else acc)
          0 unions
      in
      Dsu.set_count d = n - merges)

let prop_sizes_sum_to_n =
  let n = 15 in
  QCheck.Test.make ~name:"set sizes sum to n" ~count:300 (unions_gen n)
    (fun unions ->
      let d = Dsu.create n in
      List.iter (fun (i, j) -> ignore (Dsu.union d i j)) unions;
      let total = ref 0 in
      Dsu.iter_sets d ~f:(fun ~representative:_ ~members ->
          total := !total + List.length members);
      !total = n)

let prop_find_idempotent =
  let n = 15 in
  QCheck.Test.make ~name:"find is idempotent under path compression"
    ~count:300 (unions_gen n) (fun unions ->
      let d = Dsu.create n in
      List.iter (fun (i, j) -> ignore (Dsu.union d i j)) unions;
      let ok = ref true in
      for i = 0 to n - 1 do
        let r = Dsu.find d i in
        if Dsu.find d i <> r || Dsu.find d r <> r then ok := false
      done;
      !ok)

let prop_union_idempotent =
  let n = 15 in
  QCheck.Test.make ~name:"replaying a union script changes nothing"
    ~count:300 (unions_gen n) (fun unions ->
      let d = Dsu.create n in
      List.iter (fun (i, j) -> ignore (Dsu.union d i j)) unions;
      let count = Dsu.set_count d in
      (* every union of the script is now a no-op *)
      List.for_all (fun (i, j) -> not (Dsu.union d i j)) unions
      && Dsu.set_count d = count)

let prop_set_count_monotone =
  let n = 15 in
  QCheck.Test.make ~name:"component count never increases" ~count:300
    (unions_gen n) (fun unions ->
      let d = Dsu.create n in
      let ok = ref true in
      let prev = ref (Dsu.set_count d) in
      List.iter
        (fun (i, j) ->
          ignore (Dsu.union d i j);
          let now = Dsu.set_count d in
          if now > !prev then ok := false;
          prev := now)
        unions;
      !ok)

(* Epoch reuse: the O(1) reset must behave exactly like a fresh
   structure — no union from an earlier epoch may survive into a later
   one through the lazily healed entries. *)
let prop_epoch_reuse_no_stale =
  let n = 15 in
  QCheck.Test.make ~name:"reset epochs never leak earlier-epoch unions"
    ~count:300
    QCheck.(triple (unions_gen n) (unions_gen n) (unions_gen n))
    (fun (a, b, c) ->
      let reused = Dsu.create n in
      let ok = ref true in
      List.iter
        (fun script ->
          Dsu.reset reused;
          List.iter (fun (i, j) -> ignore (Dsu.union reused i j)) script;
          let fresh = Dsu.create n in
          List.iter (fun (i, j) -> ignore (Dsu.union fresh i j)) script;
          for i = 0 to n - 1 do
            if Dsu.set_size reused i <> Dsu.set_size fresh i then ok := false;
            for j = 0 to n - 1 do
              if Dsu.same_set reused i j <> Dsu.same_set fresh i j then
                ok := false
            done
          done;
          if Dsu.set_count reused <> Dsu.set_count fresh then ok := false)
        [ a; b; c ];
      !ok)

(* Whole-set dissolution (the reconcile contract): dissolving every
   member of one set leaves those members as singletons of the current
   epoch and every other set byte-for-byte intact. *)
let prop_dissolve_whole_set =
  let n = 12 in
  QCheck.Test.make
    ~name:"dissolving a whole set yields singletons, others intact"
    ~count:300
    QCheck.(pair (unions_gen n) (int_range 0 (n - 1)))
    (fun (script, x) ->
      let d = Dsu.create n in
      List.iter (fun (i, j) -> ignore (Dsu.union d i j)) script;
      let member = Array.init n (fun i -> Dsu.same_set d i x) in
      let before =
        Array.init n (fun i -> Array.init n (fun j -> Dsu.same_set d i j))
      in
      for i = 0 to n - 1 do
        if member.(i) then Dsu.dissolve d i
      done;
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let expect =
            if i = j then true
            else if member.(i) || member.(j) then false
            else before.(i).(j)
          in
          if Dsu.same_set d i j <> expect then ok := false
        done
      done;
      !ok)

let () =
  Alcotest.run "dsu"
    [
      ( "basics",
        [
          Alcotest.test_case "create" `Quick test_create;
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "union basics" `Quick test_union_basics;
          Alcotest.test_case "transitivity" `Quick test_transitivity;
          Alcotest.test_case "self union" `Quick test_self_union;
          Alcotest.test_case "out of range" `Quick test_out_of_range;
          Alcotest.test_case "reset" `Quick test_reset;
        ] );
      ( "aggregates",
        [
          Alcotest.test_case "max set size" `Quick test_max_set_size;
          Alcotest.test_case "groups" `Quick test_groups;
          Alcotest.test_case "iter_sets" `Quick test_iter_sets;
          Alcotest.test_case "members sorted" `Quick test_members_sorted;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_matches_naive; prop_set_count_invariant; prop_sizes_sum_to_n;
            prop_find_idempotent; prop_union_idempotent;
            prop_set_count_monotone; prop_epoch_reuse_no_stale;
            prop_dissolve_whole_set;
          ] );
    ]
