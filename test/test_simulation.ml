(* Integration tests for the simulation engine: protocol semantics,
   invariants along runs, determinism, and edge cases. *)

module Config = Mobile_network.Config
module Protocol = Mobile_network.Protocol
module Simulation = Mobile_network.Simulation

let run ?source ?max_steps ?(record_history = false) ?(seed = 0) ?(trial = 0)
    ?(radius = 0) ~side ~agents protocol =
  let cfg =
    Config.make ~side ~agents ~radius ~protocol ~seed ~trial ?source
      ?max_steps ~record_history ()
  in
  Simulation.run_config cfg

let completed (r : Simulation.report) =
  match r.Simulation.outcome with
  | Simulation.Completed -> true
  | Simulation.Timed_out -> false

(* --- broadcast --- *)

let test_broadcast_completes_all_informed () =
  let r = run ~side:16 ~agents:8 Protocol.Broadcast in
  Alcotest.(check bool) "completed" true (completed r);
  Alcotest.(check int) "all informed" 8 r.Simulation.informed;
  Alcotest.(check bool) "took time" true (r.Simulation.steps > 0)

let test_broadcast_single_agent_instant () =
  let r = run ~side:16 ~agents:1 Protocol.Broadcast in
  Alcotest.(check bool) "completed" true (completed r);
  Alcotest.(check int) "zero steps" 0 r.Simulation.steps

let test_broadcast_full_radius_instant () =
  (* radius >= diameter: the visibility graph is complete at t = 0 *)
  let r = run ~side:8 ~agents:5 ~radius:14 Protocol.Broadcast in
  Alcotest.(check bool) "completed" true (completed r);
  Alcotest.(check int) "instant flood" 0 r.Simulation.steps

let test_broadcast_explicit_source () =
  let cfg = Config.make ~side:12 ~agents:6 ~source:4 () in
  let sim = Simulation.create cfg in
  Alcotest.(check (option int)) "source recorded" (Some 4)
    (Simulation.source sim);
  Alcotest.(check bool) "source informed at t0" true
    (Simulation.is_informed sim 4)

let test_broadcast_deterministic () =
  let cfg = Config.make ~side:16 ~agents:8 ~seed:3 ~trial:5 ~record_history:true () in
  let a = Simulation.run_config cfg and b = Simulation.run_config cfg in
  Alcotest.(check int) "same steps" a.Simulation.steps b.Simulation.steps;
  match (a.Simulation.history, b.Simulation.history) with
  | Some ha, Some hb ->
      Alcotest.(check (array int)) "same informed series"
        ha.Simulation.informed hb.Simulation.informed;
      Alcotest.(check (array int)) "same frontier series"
        ha.Simulation.frontier_x hb.Simulation.frontier_x
  | _ -> Alcotest.fail "histories missing"

let test_trials_differ () =
  let steps trial =
    (run ~side:16 ~agents:8 ~seed:3 ~trial Protocol.Broadcast).Simulation.steps
  in
  let all = List.init 6 steps in
  Alcotest.(check bool) "not all trials identical" true
    (List.exists (fun s -> s <> List.hd all) (List.tl all))

let test_informed_monotone_and_bounded () =
  let cfg = Config.make ~side:16 ~agents:10 ~record_history:true () in
  let r = Simulation.run_config cfg in
  match r.Simulation.history with
  | None -> Alcotest.fail "history requested"
  | Some h ->
      let series = h.Simulation.informed in
      Alcotest.(check int) "history length = steps + 1"
        (r.Simulation.steps + 1) (Array.length series);
      Alcotest.(check int) "starts with one informed" 1 series.(0);
      Alcotest.(check int) "ends all informed" 10
        series.(Array.length series - 1);
      for i = 1 to Array.length series - 1 do
        Alcotest.(check bool) "monotone" true (series.(i) >= series.(i - 1));
        Alcotest.(check bool) "bounded" true (series.(i) <= 10)
      done

let test_frontier_monotone_and_bounded () =
  let side = 16 in
  let cfg = Config.make ~side ~agents:10 ~record_history:true () in
  let r = Simulation.run_config cfg in
  match r.Simulation.history with
  | None -> Alcotest.fail "history requested"
  | Some h ->
      let series = h.Simulation.frontier_x in
      for i = 0 to Array.length series - 1 do
        Alcotest.(check bool) "within grid" true
          (series.(i) >= 0 && series.(i) < side);
        if i > 0 then
          Alcotest.(check bool) "monotone" true (series.(i) >= series.(i - 1))
      done

let test_timeout () =
  let r = run ~side:32 ~agents:4 ~max_steps:3 Protocol.Broadcast in
  Alcotest.(check bool) "timed out" false (completed r);
  Alcotest.(check int) "stopped at cap" 3 r.Simulation.steps;
  Alcotest.(check bool) "not everyone informed" true (r.Simulation.informed < 4)

let test_zero_cap_reports_initial_state () =
  let r = run ~side:32 ~agents:4 ~max_steps:0 Protocol.Broadcast in
  Alcotest.(check int) "no steps" 0 r.Simulation.steps;
  Alcotest.(check bool) "at least source informed" true
    (r.Simulation.informed >= 1)

let test_invalid_config_raises () =
  Alcotest.check_raises "invalid"
    (Invalid_argument "Simulation.create: side must be positive") (fun () ->
      ignore (Simulation.create (Config.make ~side:0 ~agents:1 ())))

let test_step_after_done_is_noop () =
  let sim = Simulation.create (Config.make ~side:8 ~agents:1 ()) in
  Alcotest.(check bool) "done at t0" true (Simulation.is_done sim);
  Simulation.step sim;
  Alcotest.(check int) "time unchanged" 0 (Simulation.time sim)

let test_radius_speeds_broadcast () =
  (* median over trials: r = 6 cannot be slower than r = 0 by much; in
     practice it is several times faster *)
  let median radius =
    let times =
      Array.init 7 (fun trial ->
          float_of_int
            (run ~side:24 ~agents:12 ~radius ~trial Protocol.Broadcast)
              .Simulation.steps)
    in
    Array.sort compare times;
    times.(3)
  in
  let t0 = median 0 and t6 = median 6 in
  Alcotest.(check bool)
    (Printf.sprintf "r=6 (%.0f) faster than r=0 (%.0f)" t6 t0)
    true (t6 < t0)

(* --- gossip --- *)

let test_gossip_everyone_knows_everything () =
  let cfg = Config.make ~side:12 ~agents:6 ~protocol:Protocol.Gossip () in
  let sim = Simulation.create cfg in
  let r = Simulation.run sim in
  Alcotest.(check bool) "completed" true (completed r);
  for i = 0 to 5 do
    Alcotest.(check int)
      (Printf.sprintf "agent %d knows all" i)
      6
      (Simulation.rumors_known sim i)
  done

let test_gossip_initial_knowledge () =
  let cfg = Config.make ~side:20 ~agents:5 ~protocol:Protocol.Gossip ~max_steps:0 () in
  let sim = Simulation.create cfg in
  (* after the t0 exchange every agent knows at least its own rumor *)
  for i = 0 to 4 do
    Alcotest.(check bool) "knows at least own rumor" true
      (Simulation.rumors_known sim i >= 1)
  done

(* --- frog --- *)

let test_frog_completes () =
  let r = run ~side:12 ~agents:6 Protocol.Frog in
  Alcotest.(check bool) "completed" true (completed r);
  Alcotest.(check int) "all informed" 6 r.Simulation.informed

let test_frog_uninformed_agents_frozen () =
  let cfg = Config.make ~side:24 ~agents:8 ~protocol:Protocol.Frog ~seed:2 () in
  let sim = Simulation.create cfg in
  (* record initial positions; every still-uninformed agent must sit at
     its initial node at all times *)
  let initial = Simulation.positions sim in
  let violations = ref 0 in
  let steps = ref 0 in
  while (not (Simulation.is_done sim)) && !steps < 2000 do
    Simulation.step sim;
    incr steps;
    for i = 0 to 7 do
      if
        (not (Simulation.is_informed sim i))
        && Simulation.position sim i <> initial.(i)
      then incr violations
    done
  done;
  Alcotest.(check int) "uninformed agents never moved" 0 !violations

(* --- coverage protocols --- *)

let test_cover_walks_covers_grid () =
  let side = 10 in
  let cfg =
    Config.make ~side ~agents:4 ~protocol:Protocol.Cover_walks () in
  let sim = Simulation.create cfg in
  let r = Simulation.run sim in
  Alcotest.(check bool) "completed" true (completed r);
  Alcotest.(check int) "every node covered" (side * side)
    r.Simulation.covered

let test_cover_walks_initial_positions_covered () =
  let cfg =
    Config.make ~side:10 ~agents:4 ~protocol:Protocol.Cover_walks ~max_steps:0
      ()
  in
  let sim = Simulation.create cfg in
  Alcotest.(check bool) "initial positions already counted" true
    (Simulation.covered_count sim >= 1)

let test_broadcast_cover_subsumes_broadcast () =
  let side = 10 in
  let r = run ~side ~agents:5 Protocol.Broadcast_cover in
  Alcotest.(check bool) "completed" true (completed r);
  Alcotest.(check int) "grid covered" (side * side) r.Simulation.covered;
  Alcotest.(check int) "everyone informed on the way" 5 r.Simulation.informed

let test_coverage_monotone () =
  let cfg =
    Config.make ~side:10 ~agents:4 ~protocol:Protocol.Cover_walks
      ~record_history:true ()
  in
  let r = Simulation.run_config cfg in
  match r.Simulation.history with
  | None -> Alcotest.fail "history requested"
  | Some h ->
      let series = h.Simulation.covered in
      for i = 1 to Array.length series - 1 do
        Alcotest.(check bool) "covered monotone" true
          (series.(i) >= series.(i - 1))
      done

(* --- predator-prey --- *)

let test_predator_prey_extinction () =
  let cfg =
    Config.make ~side:10 ~agents:4
      ~protocol:(Protocol.Predator_prey { preys = 6 })
      ()
  in
  let sim = Simulation.create cfg in
  Alcotest.(check int) "population includes preys" 10
    (Simulation.population sim);
  (* the t = 0 exchange may already catch preys that start on a
     predator's node *)
  Alcotest.(check bool) "initial live preys within [0, 6]" true
    (Simulation.live_preys sim >= 0 && Simulation.live_preys sim <= 6);
  let r = Simulation.run sim in
  Alcotest.(check bool) "completed" true (completed r);
  Alcotest.(check int) "no prey left" 0 (Simulation.live_preys sim);
  Alcotest.(check int) "everyone caught or predator" 10 r.Simulation.informed

let test_predator_prey_no_preys_instant () =
  let r =
    run ~side:10 ~agents:3 (Protocol.Predator_prey { preys = 0 })
  in
  Alcotest.(check bool) "completed" true (completed r);
  Alcotest.(check int) "instant" 0 r.Simulation.steps

let test_predator_prey_live_preys_monotone () =
  let cfg =
    Config.make ~side:12 ~agents:3
      ~protocol:(Protocol.Predator_prey { preys = 5 })
      ()
  in
  let sim = Simulation.create cfg in
  let prev = ref (Simulation.live_preys sim) in
  let steps = ref 0 in
  while (not (Simulation.is_done sim)) && !steps < 50_000 do
    Simulation.step sim;
    incr steps;
    let now = Simulation.live_preys sim in
    Alcotest.(check bool) "monotone decrease" true (now <= !prev);
    prev := now
  done;
  Alcotest.(check int) "extinct" 0 !prev

let test_predator_prey_no_chaining () =
  (* preys never transmit: with radius 0 and a single predator placed by
     seed, a prey adjacent to another prey is not "caught through" it.
     We verify semantics structurally: catching requires a predator id. *)
  let cfg =
    Config.make ~side:6 ~agents:1
      ~protocol:(Protocol.Predator_prey { preys = 4 })
      ~seed:11 ()
  in
  let sim = Simulation.create cfg in
  (* at t0 some preys may cohabit; none may be caught unless they share
     the predator's node *)
  let predator_pos = Simulation.position sim 0 in
  for i = 1 to 4 do
    if Simulation.is_informed sim i then
      Alcotest.(check int)
        (Printf.sprintf "caught prey %d is at the predator's node" i)
        predator_pos (Simulation.position sim i)
  done

(* --- exchange rules and multiple sources --- *)

let test_single_hop_completes () =
  let cfg =
    Config.make ~side:12 ~agents:6 ~exchange:Config.Single_hop ~seed:1 ()
  in
  let r = Simulation.run_config cfg in
  Alcotest.(check bool) "completed" true (completed r);
  Alcotest.(check int) "all informed" 6 r.Simulation.informed

let test_single_hop_no_transitive_jump () =
  (* identical (seed, trial) pairs give identical placements and the
     same source, so the t0 informed counts are directly comparable:
     flooding reaches whole components, single-hop only direct
     neighbours — flood >= hop always, and on a crowded 4x4 grid with
     radius 3 the strict gap shows up in some trial *)
  let informed_at_t0 exchange trial =
    Simulation.informed_count
      (Simulation.create
         (Config.make ~side:4 ~agents:12 ~radius:3 ~exchange ~seed:3 ~trial
            ~max_steps:0 ()))
  in
  let strict_gap = ref false in
  for trial = 0 to 9 do
    let flood = informed_at_t0 Config.Flood_component trial in
    let hop = informed_at_t0 Config.Single_hop trial in
    Alcotest.(check bool) "flood >= single-hop at t0" true (flood >= hop);
    if flood > hop then strict_gap := true
  done;
  Alcotest.(check bool) "flooding strictly beats one hop somewhere" true
    !strict_gap

let test_single_hop_slower_above_percolation () =
  (* above the percolation point the giant component makes flooding
     near-instant while single-hop still pays graph-distance hops *)
  let time exchange trial =
    let cfg =
      Config.make ~side:24 ~agents:48 ~radius:8 ~exchange ~seed:5 ~trial ()
    in
    (Simulation.run_config cfg).Simulation.steps
  in
  let total_flood = ref 0 and total_hop = ref 0 in
  for trial = 0 to 4 do
    total_flood := !total_flood + time Config.Flood_component trial;
    total_hop := !total_hop + time Config.Single_hop trial
  done;
  Alcotest.(check bool)
    (Printf.sprintf "single-hop (%d) slower than flood (%d)" !total_hop
       !total_flood)
    true
    (!total_hop > !total_flood)

let test_single_hop_gossip_completes () =
  let cfg =
    Config.make ~side:10 ~agents:5 ~protocol:Protocol.Gossip
      ~exchange:Config.Single_hop ~seed:2 ()
  in
  let sim = Simulation.create cfg in
  let r = Simulation.run sim in
  Alcotest.(check bool) "completed" true (completed r);
  for i = 0 to 4 do
    Alcotest.(check int) "knows all" 5 (Simulation.rumors_known sim i)
  done

let test_flood_dominates_single_hop_stepwise () =
  (* same (seed, trial) => identical placements and identical per-agent
     movement streams (movement draws do not depend on informed state
     for Broadcast), so the two exchange rules see the same trajectories
     and flooding's informed set must contain single-hop's at every
     step *)
  let mk exchange =
    Simulation.create
      (Config.make ~side:12 ~agents:10 ~radius:2 ~exchange ~seed:9
         ~max_steps:max_int ())
  in
  let flood = mk Config.Flood_component in
  let hop = mk Config.Single_hop in
  let steps = ref 0 in
  let ok = ref true in
  while (not (Simulation.is_done hop)) && !steps < 3000 do
    (* positions agree exactly while both runs are still live (a
       finished simulation freezes, so skip the check once flooding
       completes) *)
    if
      (not (Simulation.is_done flood))
      && Simulation.positions flood <> Simulation.positions hop
    then ok := false;
    if Simulation.informed_count flood < Simulation.informed_count hop then
      ok := false;
    for i = 0 to 9 do
      if Simulation.is_informed hop i && not (Simulation.is_informed flood i)
      then ok := false
    done;
    Simulation.step flood;
    Simulation.step hop;
    incr steps
  done;
  Alcotest.(check bool) "flood dominates single-hop pointwise" true !ok

let test_multiple_sources () =
  let cfg = Config.make ~side:20 ~agents:10 ~sources:4 ~max_steps:0 () in
  let sim = Simulation.create cfg in
  Alcotest.(check bool) "at least 4 informed at t0" true
    (Simulation.informed_count sim >= 4);
  Alcotest.(check (option int)) "no single source recorded" None
    (Simulation.source sim)

let test_all_sources_instant () =
  let r =
    Simulation.run_config (Config.make ~side:20 ~agents:7 ~sources:7 ())
  in
  Alcotest.(check bool) "completed" true (completed r);
  Alcotest.(check int) "instant" 0 r.Simulation.steps

let test_more_sources_not_slower () =
  let median sources =
    let times =
      Array.init 7 (fun trial ->
          float_of_int
            (Simulation.run_config
               (Config.make ~side:24 ~agents:16 ~sources ~seed:4 ~trial ()))
              .Simulation.steps)
    in
    Array.sort compare times;
    times.(3)
  in
  let t1 = median 1 and t8 = median 8 in
  Alcotest.(check bool)
    (Printf.sprintf "8 sources (%.0f) beat 1 source (%.0f)" t8 t1)
    true (t8 < t1)

let test_torus_broadcast () =
  let cfg = Config.make ~torus:true ~side:16 ~agents:8 ~seed:1 () in
  let r = Simulation.run_config cfg in
  Alcotest.(check bool) "completed" true (completed r);
  Alcotest.(check int) "all informed" 8 r.Simulation.informed;
  (* deterministic *)
  let r2 = Simulation.run_config cfg in
  Alcotest.(check int) "deterministic" r.Simulation.steps r2.Simulation.steps

let test_torus_differs_from_bounded () =
  let steps torus =
    (Simulation.run_config (Config.make ~torus ~side:16 ~agents:8 ~seed:1 ()))
      .Simulation.steps
  in
  Alcotest.(check bool) "topology changes the dynamics" true
    (steps true <> steps false)

let test_torus_validation () =
  Alcotest.(check bool) "tiny torus rejected" true
    (match Config.validate (Config.make ~torus:true ~side:2 ~agents:1 ()) with
    | Error _ -> true
    | Ok () -> false)

(* --- getters and misc --- *)

let test_population_and_getters () =
  let cfg = Config.make ~side:9 ~agents:7 () in
  let sim = Simulation.create cfg in
  Alcotest.(check int) "population" 7 (Simulation.population sim);
  Alcotest.(check int) "grid size" 81 (Grid.nodes (Simulation.grid sim));
  Alcotest.(check int) "time 0" 0 (Simulation.time sim);
  Alcotest.(check bool) "informed count is 1" true
    (Simulation.informed_count sim >= 1);
  let positions = Simulation.positions sim in
  Alcotest.(check int) "positions array" 7 (Array.length positions);
  Array.iteri
    (fun i p ->
      Alcotest.(check int) "getter matches array" p (Simulation.position sim i))
    positions;
  Alcotest.check_raises "agent out of range"
    (Invalid_argument "Simulation: agent index out of range") (fun () ->
      ignore (Simulation.is_informed sim 7))

let test_positions_returns_copy () =
  let sim = Simulation.create (Config.make ~side:9 ~agents:3 ()) in
  let positions = Simulation.positions sim in
  let original = Simulation.position sim 0 in
  positions.(0) <- (positions.(0) + 1) mod 81;
  Alcotest.(check int) "engine state unaffected" original
    (Simulation.position sim 0)

let test_on_step_fires_every_step () =
  let cfg = Config.make ~side:12 ~agents:4 ~max_steps:25 () in
  let count = ref 0 in
  let r = Simulation.run_config ~on_step:(fun _ -> incr count) cfg in
  Alcotest.(check int) "one callback per step" r.Simulation.steps !count

let test_max_island_tracked () =
  let cfg = Config.make ~side:8 ~agents:6 ~radius:16 () in
  let sim = Simulation.create cfg in
  (* radius >= diameter: all agents are one island *)
  Alcotest.(check int) "island of everyone" 6 (Simulation.max_island sim);
  Alcotest.(check (array int)) "single island listed" [| 6 |]
    (Simulation.island_sizes sim)

let test_island_sizes_partition () =
  let sim = Simulation.create (Config.make ~side:16 ~agents:9 ~radius:2 ()) in
  let sizes = Simulation.island_sizes sim in
  Alcotest.(check int) "sizes sum to population" 9
    (Array.fold_left ( + ) 0 sizes);
  Alcotest.(check int) "max matches" (Simulation.max_island sim)
    (Array.fold_left max 0 sizes);
  (* predator-prey builds no components *)
  let pp =
    Simulation.create
      (Config.make ~side:16 ~agents:3
         ~protocol:(Protocol.Predator_prey { preys = 2 })
         ())
  in
  Alcotest.(check (array int)) "predator-prey has none" [||]
    (Simulation.island_sizes pp)

let test_completion_time_helper () =
  (match Simulation.completion_time (Config.make ~side:10 ~agents:4 ()) with
  | Some t -> Alcotest.(check bool) "positive time" true (t > 0)
  | None -> Alcotest.fail "should complete");
  match
    Simulation.completion_time
      (Config.make ~side:32 ~agents:2 ~max_steps:2 ())
  with
  | Some _ -> Alcotest.fail "cannot complete in 2 steps (w.h.p. placement)"
  | None -> ()

(* --- qcheck: engine invariants on random small configurations --- *)

let protocol_gen =
  QCheck.Gen.oneofl
    [
      Protocol.Broadcast; Protocol.Gossip; Protocol.Frog;
      Protocol.Broadcast_cover; Protocol.Cover_walks;
      Protocol.Predator_prey { preys = 3 };
    ]

let config_gen =
  QCheck.Gen.(
    map
      (fun (side, agents, radius, seed, proto) ->
        Config.make ~side ~agents ~radius ~protocol:proto ~seed
          ~max_steps:400 ~record_history:true ())
      (tup5 (int_range 3 10) (int_range 1 6) (int_range 0 3) (int_range 0 999)
         protocol_gen))

let arb_config =
  QCheck.make config_gen ~print:(fun cfg -> Config.to_string cfg)

let prop_run_invariants =
  QCheck.Test.make ~name:"reports are internally consistent" ~count:150
    arb_config (fun cfg ->
      let r = Simulation.run_config cfg in
      let population = Protocol.population cfg.Config.protocol ~k:cfg.Config.agents in
      let history_ok =
        match r.Simulation.history with
        | None -> false
        | Some h ->
            Array.length h.Simulation.informed = r.Simulation.steps + 1
            && Array.for_all
                 (fun c -> c >= 0 && c <= population)
                 h.Simulation.informed
      in
      r.Simulation.steps <= 400
      && r.Simulation.informed <= population
      && r.Simulation.informed >= 0
      && history_ok)

let prop_completed_means_goal_reached =
  QCheck.Test.make ~name:"completed runs reached their protocol goal"
    ~count:150 arb_config (fun cfg ->
      let sim = Simulation.create cfg in
      let r = Simulation.run sim in
      match r.Simulation.outcome with
      | Simulation.Timed_out -> true
      | Simulation.Completed -> (
          let population = Simulation.population sim in
          match cfg.Config.protocol with
          | Protocol.Broadcast | Protocol.Frog ->
              r.Simulation.informed = population
          | Protocol.Gossip ->
              let all = ref true in
              for i = 0 to population - 1 do
                if Simulation.rumors_known sim i <> population then all := false
              done;
              !all
          | Protocol.Broadcast_cover | Protocol.Cover_walks ->
              r.Simulation.covered = Config.n cfg
          | Protocol.Predator_prey _ -> Simulation.live_preys sim = 0))

let prop_determinism =
  QCheck.Test.make ~name:"identical configs give identical runs" ~count:60
    arb_config (fun cfg ->
      let a = Simulation.run_config cfg and b = Simulation.run_config cfg in
      a.Simulation.steps = b.Simulation.steps
      && a.Simulation.informed = b.Simulation.informed
      && a.Simulation.covered = b.Simulation.covered)

(* The incremental component-maintenance fast path is an optimisation,
   never a semantics change: a run with --full-rebuild (scratch DSU
   every step) must produce the identical report, history included. *)
let prop_full_rebuild_identical =
  QCheck.Test.make
    ~name:"incremental components = full rebuild, report and history"
    ~count:40
    (QCheck.make
       QCheck.Gen.(
         tup5 (int_range 3 10) (int_range 1 8) (int_range 0 2)
           (int_range 0 999) bool))
    (fun (side, agents, radius, seed, torus) ->
      let cfg =
        Config.make ~side ~agents ~radius ~torus ~seed ~max_steps:300
          ~record_history:true ()
      in
      Simulation.run_config cfg
      = Simulation.run_config ~full_rebuild:true cfg)

let () =
  Alcotest.run "simulation"
    [
      ( "broadcast",
        [
          Alcotest.test_case "completes, all informed" `Quick
            test_broadcast_completes_all_informed;
          Alcotest.test_case "single agent instant" `Quick
            test_broadcast_single_agent_instant;
          Alcotest.test_case "full radius instant" `Quick
            test_broadcast_full_radius_instant;
          Alcotest.test_case "explicit source" `Quick
            test_broadcast_explicit_source;
          Alcotest.test_case "deterministic" `Quick test_broadcast_deterministic;
          Alcotest.test_case "trials differ" `Quick test_trials_differ;
          Alcotest.test_case "informed monotone" `Quick
            test_informed_monotone_and_bounded;
          Alcotest.test_case "frontier monotone" `Quick
            test_frontier_monotone_and_bounded;
          Alcotest.test_case "timeout" `Quick test_timeout;
          Alcotest.test_case "zero cap" `Quick test_zero_cap_reports_initial_state;
          Alcotest.test_case "invalid config" `Quick test_invalid_config_raises;
          Alcotest.test_case "step after done" `Quick
            test_step_after_done_is_noop;
          Alcotest.test_case "radius speeds broadcast" `Slow
            test_radius_speeds_broadcast;
        ] );
      ( "gossip",
        [
          Alcotest.test_case "everyone knows everything" `Quick
            test_gossip_everyone_knows_everything;
          Alcotest.test_case "initial knowledge" `Quick
            test_gossip_initial_knowledge;
        ] );
      ( "frog",
        [
          Alcotest.test_case "completes" `Quick test_frog_completes;
          Alcotest.test_case "uninformed frozen" `Quick
            test_frog_uninformed_agents_frozen;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "cover walks" `Quick test_cover_walks_covers_grid;
          Alcotest.test_case "initial coverage" `Quick
            test_cover_walks_initial_positions_covered;
          Alcotest.test_case "broadcast cover" `Quick
            test_broadcast_cover_subsumes_broadcast;
          Alcotest.test_case "coverage monotone" `Quick test_coverage_monotone;
        ] );
      ( "predator-prey",
        [
          Alcotest.test_case "extinction" `Quick test_predator_prey_extinction;
          Alcotest.test_case "no preys" `Quick
            test_predator_prey_no_preys_instant;
          Alcotest.test_case "live preys monotone" `Quick
            test_predator_prey_live_preys_monotone;
          Alcotest.test_case "no chaining" `Quick test_predator_prey_no_chaining;
        ] );
      ( "exchange and sources",
        [
          Alcotest.test_case "single-hop completes" `Quick
            test_single_hop_completes;
          Alcotest.test_case "single-hop bounded by flood" `Quick
            test_single_hop_no_transitive_jump;
          Alcotest.test_case "single-hop slower above rc" `Quick
            test_single_hop_slower_above_percolation;
          Alcotest.test_case "single-hop gossip" `Quick
            test_single_hop_gossip_completes;
          Alcotest.test_case "flood dominates single-hop" `Quick
            test_flood_dominates_single_hop_stepwise;
          Alcotest.test_case "multiple sources" `Quick test_multiple_sources;
          Alcotest.test_case "all agents sources" `Quick
            test_all_sources_instant;
          Alcotest.test_case "more sources faster" `Slow
            test_more_sources_not_slower;
        ] );
      ( "torus",
        [
          Alcotest.test_case "broadcast on torus" `Quick test_torus_broadcast;
          Alcotest.test_case "topology matters" `Quick
            test_torus_differs_from_bounded;
          Alcotest.test_case "validation" `Quick test_torus_validation;
        ] );
      ( "getters",
        [
          Alcotest.test_case "population and getters" `Quick
            test_population_and_getters;
          Alcotest.test_case "positions copy" `Quick test_positions_returns_copy;
          Alcotest.test_case "on_step callback" `Quick
            test_on_step_fires_every_step;
          Alcotest.test_case "max island" `Quick test_max_island_tracked;
          Alcotest.test_case "island sizes" `Quick
            test_island_sizes_partition;
          Alcotest.test_case "completion_time" `Quick
            test_completion_time_helper;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_run_invariants; prop_completed_means_goal_reached;
            prop_determinism; prop_full_rebuild_identical;
          ] );
    ]
