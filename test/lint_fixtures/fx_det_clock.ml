(* expect: exactly one [determinism] finding — wall clock *)
let now () = Sys.time ()
