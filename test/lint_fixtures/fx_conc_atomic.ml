(* expect: exactly one [concurrency] finding — atomic cell *)
let cell () = Atomic.make 0
