(* expect: exactly one [concurrency] finding — domain-local storage *)
let key () = Domain.DLS.new_key (fun () -> 0)
