(* alloc: returning coordinates as a pair allocates a tuple per call. *)
let[@hot] locate (i : int) (side : int) = (i mod side, i / side)
