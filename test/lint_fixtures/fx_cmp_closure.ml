(* expect: exactly one [poly-compare] finding — unspecialised comparator
   closure, even at an immediate type *)
let sort (l : int list) = List.sort compare l
