(* alloc: [scratch] itself carries no [@hot], but it is reachable from
   the [@hot] [driver] through the call graph, so its allocation is
   still flagged (the finding sits on [Array.make], not on [driver]). *)
let scratch (n : int) = Array.make n 0

let[@hot] driver (n : int) = Array.length (scratch n)
