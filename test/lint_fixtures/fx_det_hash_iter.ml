(* expect: exactly one [determinism] finding — hash-order fold *)
let sum (tbl : (int, int) Hashtbl.t) = Hashtbl.fold (fun _ v acc -> v + acc) tbl 0
