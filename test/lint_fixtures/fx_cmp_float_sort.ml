(* expect: exactly one [poly-compare] finding — float comparator *)
let sort (a : float array) = Array.sort compare a
