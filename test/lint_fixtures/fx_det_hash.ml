(* expect: exactly one [determinism] finding — structural hash value *)
let h (x : string) = Hashtbl.hash x
