(* alloc: [shift3 x] applies one of three arguments, allocating a
   partial-application closure inside the hot function. *)
let shift3 (a : int) (b : int) (c : int) = a + b + c

let[@hot] stage (x : int) =
  let f = shift3 x in
  f 1 2
