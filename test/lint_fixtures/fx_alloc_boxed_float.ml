(* alloc: a float array literal allocates boxed-float storage. *)
let[@hot] unit_box () = [| 0.0; 1.0 |]
