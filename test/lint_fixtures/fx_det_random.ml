(* expect: exactly one [determinism] finding — ambient PRNG *)
let roll () = Random.int 6
