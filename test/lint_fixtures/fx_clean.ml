(* expect: no findings — the monomorphic, deterministic idioms the other
   fixtures should have used *)
let sort_ints (l : int list) = List.sort Int.compare l
let sort_floats (a : float array) = Array.sort Float.compare a
let cmp_pairs (a1, a2) (b1, b2) =
  let c = Int.compare a1 b1 in
  if c <> 0 then c else Int.compare a2 b2
let lookup (tbl : (string, int) Hashtbl.t) k = Hashtbl.find_opt tbl k
let record (tbl : (string, int) Hashtbl.t) k v = Hashtbl.replace tbl k v
let same_name (a : string) (b : string) = a = b
let bigger (a : float) (b : float) = a > b
