(* clean: a justified allocation inside a hot function — [@alloc_ok]
   with a reason suppresses the tuple finding. *)
let[@hot] locate_ok (i : int) (side : int) =
  ((i mod side, i / side) [@alloc_ok "called once per run for reporting, not per step"])
