(* expect: exactly one [concurrency] finding — lock creation *)
let lock () = Mutex.create ()
