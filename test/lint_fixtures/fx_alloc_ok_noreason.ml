(* alloc: [@alloc_ok] without a justification string is itself a
   finding — the escape hatch must say why the allocation is fine. *)
let[@hot] pair_oops (a : int) (b : int) = ((a, b) [@alloc_ok])
