(* expect: exactly one [concurrency] finding — domain spawn *)
let go f = Domain.spawn f
