(* expect: exactly one [io] finding — socket I/O outside lib/service *)
let listen () = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0
