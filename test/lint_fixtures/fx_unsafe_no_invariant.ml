(* unsafe: this module IS in the audited-unsafe table, but the access
   sits in a function with no [@unsafe_invariant "..."] justification. *)
let peek (a : int array) (i : int) = Array.unsafe_get a i
