(* unsafe: this module is not in the audited-unsafe table in
   lib/lint/rules.ml, so any unchecked access is flagged outright. *)
let peek (a : int array) (i : int) = Array.unsafe_get a i
