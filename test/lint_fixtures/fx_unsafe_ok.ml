(* clean: the module is in the audited-unsafe table and the access is
   covered by an [@unsafe_invariant] stating why the index is in range. *)
let[@unsafe_invariant "i is pre-masked by land (Array.length a - 1)"] peek
    (a : int array) (i : int) =
  Array.unsafe_get a (i land (Array.length a - 1))
