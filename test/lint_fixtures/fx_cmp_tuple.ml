(* expect: exactly one [poly-compare] finding — compare applied at a tuple *)
let cmp (a : int * int) (b : int * int) = compare a b
