(* alloc: the iteration body captures [shift], allocating a closure on
   every call of this [@hot] function. *)
let[@hot] iter_shifted (shift : int) (xs : int array) =
  Array.iter (fun x -> ignore (x + shift)) xs
