(* Golden-diagnostics suite for mobilint.

   Each fixture module under lint_fixtures/ must trigger exactly one
   rule (fx_clean none); the real codebase must come out clean; the
   CLI must exit 1 on findings and 0 on a clean scan; the --json
   report must satisfy its own structural validator; baselines and
   the layering DAG are exercised on synthetic inputs.

   Runs from _build/default/test, so fixture cmts live under
   lint_fixtures/.lint_fixtures.objs/byte and the source tree (for
   layering dune files) is the prefix of cwd before /_build/. *)

let fixture_cmt name =
  Filename.concat "lint_fixtures/.lint_fixtures.objs/byte" (name ^ ".cmt")

(* Source root: strip the /_build/... suffix from cwd (tests run in the
   build tree); fall back to cwd when run from the repo root. *)
let repo_root () =
  let cwd = Sys.getcwd () in
  let marker = Filename.dir_sep ^ "_build" ^ Filename.dir_sep in
  let rec find i =
    if i + String.length marker > String.length cwd then None
    else if String.sub cwd i (String.length marker) = marker then Some i
    else find (i + 1)
  in
  match find 0 with Some i -> String.sub cwd 0 i | None -> cwd

let rule_tag_of_findings = function
  | [ f ] -> Lint.Finding.rule_tag f.Lint.Finding.rule
  | l -> Printf.sprintf "<%d findings>" (List.length l)

(* fixture module -> the one rule tag it must trigger *)
let fixtures =
  [
    ("fx_det_random", "determinism");
    ("fx_det_clock", "determinism");
    ("fx_det_hash", "determinism");
    ("fx_det_hash_iter", "determinism");
    ("fx_conc_spawn", "concurrency");
    ("fx_conc_dls", "concurrency");
    ("fx_conc_atomic", "concurrency");
    ("fx_conc_mutex", "concurrency");
    ("fx_cmp_float_sort", "poly-compare");
    ("fx_cmp_tuple", "poly-compare");
    ("fx_cmp_closure", "poly-compare");
    ("fx_io_socket", "io");
    ("fx_alloc_closure", "alloc");
    ("fx_alloc_tuple", "alloc");
    ("fx_alloc_boxed_float", "alloc");
    ("fx_alloc_partial", "alloc");
    ("fx_alloc_hot_propagation", "alloc");
    ("fx_alloc_ok_noreason", "alloc");
    ("fx_unsafe_unaudited", "unsafe");
    ("fx_unsafe_no_invariant", "unsafe");
  ]

let test_fixture_diagnostics () =
  List.iter
    (fun (name, expected) ->
      let findings = Lint.Cmt_scan.scan_file (fixture_cmt name) in
      Alcotest.(check string)
        (name ^ " triggers exactly " ^ expected)
        expected
        (rule_tag_of_findings findings);
      let f = List.hd findings in
      Alcotest.(check string)
        (name ^ " finding names the fixture source")
        ("test/lint_fixtures/" ^ name ^ ".ml")
        f.Lint.Finding.file;
      Alcotest.(check bool)
        (name ^ " has a positive line") true
        (f.Lint.Finding.line > 0))
    fixtures

let test_clean_fixture () =
  List.iter
    (fun name ->
      Alcotest.(check int)
        (name ^ " has no findings")
        0
        (List.length (Lint.Cmt_scan.scan_file (fixture_cmt name))))
    [ "fx_clean"; "fx_alloc_ok"; "fx_unsafe_ok" ]

let test_clean_tree () =
  (* the real codebase after this PR's fixes: no typed-AST findings
     over lib/ and bin/, and no layering violations *)
  let cmt =
    Lint.Cmt_scan.scan_tree ~root:Filename.parent_dir_name
      ~subdirs:[ "lib"; "bin" ] ()
  in
  let layering = Lint.Layering.check ~dune_root:(repo_root ()) in
  let all = Lint.Report.sort (cmt @ layering) in
  Alcotest.(check (list string))
    "clean codebase" []
    (List.map Lint.Finding.to_string all)

(* ---- canary: every suppression annotation is load-bearing ------------- *)

let findings_in file rule findings =
  List.filter
    (fun f ->
      f.Lint.Finding.file = file
      && Lint.Finding.rule_tag f.Lint.Finding.rule = rule)
    findings

let test_canary_alloc_ok () =
  (* With [@alloc_ok] justifications ignored, the suppressed allocation
     sites resurface — i.e. deleting any one of them from a hot module
     would flip the real scan to exit 1. Intbuf.push (amortized growth)
     is the designated alloc canary. *)
  let findings =
    Lint.Cmt_scan.scan_tree ~respect_alloc_ok:false
      ~root:Filename.parent_dir_name ~subdirs:[ "lib" ] ()
  in
  Alcotest.(check bool)
    "disabling [@alloc_ok] resurfaces Intbuf.push's growth allocation" true
    (findings_in "lib/core/intbuf.ml" "alloc" findings <> [])

let test_canary_unsafe_invariant () =
  (* Same for [@unsafe_invariant]: Dsu's unchecked accesses are the
     designated unsafe canary. *)
  let findings =
    Lint.Cmt_scan.scan_tree ~respect_unsafe_invariants:false
      ~root:Filename.parent_dir_name ~subdirs:[ "lib" ] ()
  in
  Alcotest.(check bool)
    "disabling [@unsafe_invariant] resurfaces Dsu's unchecked accesses" true
    (findings_in "lib/dsu/dsu.ml" "unsafe" findings <> [])

(* ---- parallel scan determinism ---------------------------------------- *)

let test_jobs_determinism () =
  let scan jobs =
    List.map Lint.Finding.to_string
      (Lint.Cmt_scan.scan_tree ~jobs ~respect_alloc_ok:false
         ~root:Filename.parent_dir_name ~subdirs:[ "lib"; "bin" ] ())
  in
  (* canary mode guarantees a non-trivial finding list to compare *)
  let sequential = scan 1 in
  Alcotest.(check bool) "canary scan is non-empty" true (sequential <> []);
  Alcotest.(check (list string))
    "4-worker scan is byte-identical to sequential" sequential (scan 4)

(* ---- CLI exit codes --------------------------------------------------- *)

let mobilint = Filename.concat ".." "bin/mobilint.exe"

let run_cli args =
  let out = Filename.temp_file "mobilint_out" ".txt" in
  let code = Sys.command (Printf.sprintf "%s %s > %s 2>&1" mobilint args out) in
  let ic = open_in_bin out in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove out;
  (code, s)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
  in
  go 0

let test_cli_exit_codes () =
  List.iter
    (fun (name, expected) ->
      let code, out = run_cli (fixture_cmt name) in
      Alcotest.(check int) (name ^ " exits 1") 1 code;
      Alcotest.(check bool)
        (name ^ " output carries [" ^ expected ^ "]")
        true
        (contains ~needle:("[" ^ expected ^ "]") out))
    fixtures;
  let code, _ = run_cli (fixture_cmt "fx_clean") in
  Alcotest.(check int) "clean fixture exits 0" 0 code

let test_cli_rules_filter () =
  let code, out =
    run_cli ("--rules concurrency " ^ fixture_cmt "fx_det_random")
  in
  Alcotest.(check int) "filtered rule exits 0" 0 code;
  Alcotest.(check bool)
    "no determinism finding under --rules concurrency" false
    (contains ~needle:"[determinism]" out)

let test_cli_write_baseline () =
  (* --write-baseline must emit a mobilint-baseline/1 file that, fed
     back through --baseline, silences the very findings it recorded *)
  let bl = Filename.temp_file "mobilint_wb" ".json" in
  let code, out =
    run_cli
      (Printf.sprintf "--write-baseline %s %s %s" bl
         (fixture_cmt "fx_det_random")
         (fixture_cmt "fx_cmp_tuple"))
  in
  Alcotest.(check int) "--write-baseline exits 0" 0 code;
  Alcotest.(check bool)
    "reports how many entries were written" true
    (contains ~needle:"wrote 2 baseline entries" out);
  (match Lint.Report.load_baseline bl with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "written baseline should load: %s" e);
  let code, _ =
    run_cli
      (Printf.sprintf "--baseline %s %s %s" bl
         (fixture_cmt "fx_det_random")
         (fixture_cmt "fx_cmp_tuple"))
  in
  Sys.remove bl;
  Alcotest.(check int) "round-trip: baselined scan exits 0" 0 code

let test_cli_zero_cmts_fails () =
  (* an unbuilt tree must fail loudly (exit 2), not pass as clean *)
  let code, out = run_cli "--root /nonexistent-mobilint-root" in
  Alcotest.(check int) "zero cmts exits 2" 2 code;
  Alcotest.(check bool)
    "error names the missing cmts" true
    (contains ~needle:"no .cmt files" out)

let test_cli_baseline () =
  let bl = Filename.temp_file "mobilint_baseline" ".json" in
  let oc = open_out bl in
  output_string oc
    {|{"schema": "mobilint-baseline/1",
       "ignore": [{"file": "test/lint_fixtures/fx_det_random.ml",
                   "rule": "determinism"}]}|};
  close_out oc;
  let code, _ =
    run_cli (Printf.sprintf "--baseline %s %s" bl (fixture_cmt "fx_det_random"))
  in
  Sys.remove bl;
  Alcotest.(check int) "baselined finding suppressed, exits 0" 0 code

(* ---- JSON report ------------------------------------------------------ *)

let test_json_report_validates () =
  let json = Filename.temp_file "mobilint_report" ".json" in
  let code, _ =
    run_cli (Printf.sprintf "--json %s %s" json (fixture_cmt "fx_cmp_tuple"))
  in
  Alcotest.(check int) "findings still exit 1 with --json" 1 code;
  let ic = open_in_bin json in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let doc =
    match Obs.Json.parse s with
    | Ok d -> d
    | Error e -> Alcotest.failf "report does not parse: %s" e
  in
  (match Lint.Report.validate doc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "report does not validate: %s" e);
  let code, out = run_cli ("--validate " ^ json) in
  Sys.remove json;
  Alcotest.(check int) "--validate accepts its own output" 0 code;
  Alcotest.(check bool)
    "--validate names the schema" true
    (contains ~needle:Lint.Report.schema out)

let test_json_validator_rejects () =
  let valid = Lint.Report.to_json ~root:"r" [] in
  (match Lint.Report.validate valid with
  | Ok () -> ()
  | Error e -> Alcotest.failf "empty report should validate: %s" e);
  let reject label doc =
    match Lint.Report.validate doc with
    | Ok () -> Alcotest.failf "%s should have been rejected" label
    | Error _ -> ()
  in
  reject "wrong schema"
    (Obs.Json.Assoc
       [
         ("schema", Obs.Json.String "metrics/1");
         ("root", Obs.Json.String "r");
         ("count", Obs.Json.Int 0);
         ("by_rule", Obs.Json.Assoc []);
         ("findings", Obs.Json.List []);
       ]);
  reject "count mismatch"
    (Obs.Json.Assoc
       [
         ("schema", Obs.Json.String Lint.Report.schema);
         ("root", Obs.Json.String "r");
         ("count", Obs.Json.Int 3);
         ("by_rule", Obs.Json.Assoc []);
         ("findings", Obs.Json.List []);
       ]);
  reject "unknown rule tag"
    (Obs.Json.Assoc
       [
         ("schema", Obs.Json.String Lint.Report.schema);
         ("root", Obs.Json.String "r");
         ("count", Obs.Json.Int 1);
         ("by_rule", Obs.Json.Assoc [ ("no-such-rule", Obs.Json.Int 1) ]);
         ( "findings",
           Obs.Json.List
             [
               Obs.Json.Assoc
                 [
                   ("file", Obs.Json.String "f.ml");
                   ("line", Obs.Json.Int 1);
                   ("col", Obs.Json.Int 0);
                   ("rule", Obs.Json.String "no-such-rule");
                   ("message", Obs.Json.String "m");
                 ];
             ] );
       ]);
  reject "non-int line"
    (Obs.Json.Assoc
       [
         ("schema", Obs.Json.String Lint.Report.schema);
         ("root", Obs.Json.String "r");
         ("count", Obs.Json.Int 1);
         ("by_rule", Obs.Json.Assoc [ ("determinism", Obs.Json.Int 1) ]);
         ( "findings",
           Obs.Json.List
             [
               Obs.Json.Assoc
                 [
                   ("file", Obs.Json.String "f.ml");
                   ("line", Obs.Json.String "one");
                   ("col", Obs.Json.Int 0);
                   ("rule", Obs.Json.String "determinism");
                   ("message", Obs.Json.String "m");
                 ];
             ] );
       ]);
  reject "not an object" (Obs.Json.List [])

(* ---- baselines -------------------------------------------------------- *)

let test_baseline_matching () =
  let f ~file ~line ~rule =
    Lint.Finding.make ~file ~line ~col:0 ~rule "msg"
  in
  let findings =
    [
      f ~file:"lib/a.ml" ~line:3 ~rule:Lint.Finding.Determinism;
      f ~file:"lib/a.ml" ~line:9 ~rule:Lint.Finding.Determinism;
      f ~file:"lib/b.ml" ~line:3 ~rule:Lint.Finding.Poly_compare;
    ]
  in
  let write_baseline body =
    let path = Filename.temp_file "baseline" ".json" in
    let oc = open_out path in
    output_string oc body;
    close_out oc;
    let r = Lint.Report.load_baseline path in
    Sys.remove path;
    r
  in
  let b =
    match
      write_baseline
        {|{"schema": "mobilint-baseline/1",
           "ignore": [{"file": "lib/a.ml", "rule": "determinism", "line": 3},
                      {"file": "lib/b.ml", "rule": "poly-compare"}]}|}
    with
    | Ok b -> b
    | Error e -> Alcotest.failf "baseline should load: %s" e
  in
  let kept = Lint.Report.apply_baseline b findings in
  Alcotest.(check (list string))
    "line-pinned and line-less entries suppress, others survive"
    [ "lib/a.ml:9:0: [determinism] msg" ]
    (List.map Lint.Finding.to_string kept);
  (match
     write_baseline {|{"schema": "nope/1", "ignore": []}|}
   with
  | Ok _ -> Alcotest.fail "wrong baseline schema should be rejected"
  | Error _ -> ());
  match Lint.Report.load_baseline "/nonexistent/baseline.json" with
  | Ok _ -> Alcotest.fail "missing baseline file should be an error"
  | Error _ -> ()

(* ---- layering --------------------------------------------------------- *)

let with_fake_tree stanzas fn =
  let root = Filename.temp_file "mobilint_tree" "" in
  Sys.remove root;
  Sys.mkdir root 0o755;
  Sys.mkdir (Filename.concat root "lib") 0o755;
  List.iter
    (fun (dir, contents) ->
      let d = Filename.concat (Filename.concat root "lib") dir in
      Sys.mkdir d 0o755;
      let oc = open_out (Filename.concat d "dune") in
      output_string oc contents;
      close_out oc)
    stanzas;
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command ("rm -rf " ^ Filename.quote root)))
    (fun () -> fn root)

let test_layering_violations () =
  with_fake_tree
    [
      (* a forbidden edge: core must never depend on the runtime *)
      ("core", "(library\n (name mobile_network)\n (libraries runtime))\n");
      (* a directory the DAG does not know *)
      ("mystery", "(library\n (name mystery)\n (libraries prng))\n");
      (* a name mismatch *)
      ("prng", "(library\n (name not_prng))\n")
    ]
    (fun root ->
      let findings = Lint.Report.sort (Lint.Layering.check ~dune_root:root) in
      Alcotest.(check int) "three layering findings" 3 (List.length findings);
      List.iter
        (fun f ->
          Alcotest.(check string)
            "rule is layering" "layering"
            (Lint.Finding.rule_tag f.Lint.Finding.rule))
        findings;
      let msgs = String.concat "\n" (List.map Lint.Finding.to_string findings) in
      Alcotest.(check bool)
        "forbidden edge reported" true
        (contains ~needle:"must not depend on runtime" msgs);
      Alcotest.(check bool)
        "unknown directory reported" true
        (contains ~needle:"not in the declared DAG" msgs);
      Alcotest.(check bool)
        "name mismatch reported" true
        (contains ~needle:"named not_prng" msgs))

let test_layering_accepts_declared_edges () =
  with_fake_tree
    [
      ("core",
       "(library\n (name mobile_network)\n (libraries obs prng grid dsu \
        spatial walk visibility stats))\n");
      (* external deps are ignored even on strict layers *)
      ("prng", "(library\n (name prng)\n (libraries alcotest))\n")
    ]
    (fun root ->
      Alcotest.(check (list string))
        "declared edges and external libraries pass" []
        (List.map Lint.Finding.to_string (Lint.Layering.check ~dune_root:root)))

(* ---- report order ----------------------------------------------------- *)

let test_report_order_deterministic () =
  let f file line rule =
    Lint.Finding.make ~file ~line ~col:0 ~rule "m"
  in
  let a = f "lib/a.ml" 9 Lint.Finding.Determinism in
  let b = f "lib/a.ml" 3 Lint.Finding.Poly_compare in
  let c = f "bin/z.ml" 1 Lint.Finding.Concurrency in
  let sorted l = List.map Lint.Finding.to_string (Lint.Report.sort l) in
  Alcotest.(check (list string))
    "order independent of input order"
    (sorted [ a; b; c ])
    (sorted [ c; a; b ]);
  Alcotest.(check (list string))
    "duplicates collapse"
    (sorted [ a; b ])
    (sorted [ a; b; a ])

let () =
  Alcotest.run "lint"
    [
      ( "fixtures",
        [
          Alcotest.test_case "golden diagnostics" `Quick
            test_fixture_diagnostics;
          Alcotest.test_case "clean fixture" `Quick test_clean_fixture;
        ] );
      ( "clean-tree",
        [ Alcotest.test_case "real codebase is clean" `Quick test_clean_tree ]
      );
      ( "canary",
        [
          Alcotest.test_case "[@alloc_ok] is load-bearing" `Quick
            test_canary_alloc_ok;
          Alcotest.test_case "[@unsafe_invariant] is load-bearing" `Quick
            test_canary_unsafe_invariant;
          Alcotest.test_case "parallel scan determinism" `Quick
            test_jobs_determinism;
        ] );
      ( "cli",
        [
          Alcotest.test_case "exit codes per fixture" `Quick
            test_cli_exit_codes;
          Alcotest.test_case "--rules filter" `Quick test_cli_rules_filter;
          Alcotest.test_case "--baseline suppression" `Quick test_cli_baseline;
          Alcotest.test_case "--write-baseline round-trip" `Quick
            test_cli_write_baseline;
          Alcotest.test_case "zero cmts fail loudly" `Quick
            test_cli_zero_cmts_fails;
        ] );
      ( "json",
        [
          Alcotest.test_case "--json validates" `Quick
            test_json_report_validates;
          Alcotest.test_case "validator rejection matrix" `Quick
            test_json_validator_rejects;
        ] );
      ( "baseline",
        [ Alcotest.test_case "matching semantics" `Quick test_baseline_matching ]
      );
      ( "layering",
        [
          Alcotest.test_case "violations" `Quick test_layering_violations;
          Alcotest.test_case "declared edges pass" `Quick
            test_layering_accepts_declared_edges;
        ] );
      ( "report",
        [
          Alcotest.test_case "deterministic order" `Quick
            test_report_order_deterministic;
        ] );
    ]
