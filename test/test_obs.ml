(* Tests for the observability subsystem (Obs) and its integration
   with the engine, the domain pool and the experiment harness.

   The load-bearing properties:
   - instrument semantics (counters, gauges, histograms, spans) are
     exact and thread-safe enough for the pool's use;
   - snapshots are stable: sorted keys, deterministic JSON that the
     in-tree parser round-trips;
   - the null sink costs nothing: no allocation on the disabled path;
   - metrics are pure observation: experiment output is byte-identical
     at jobs = 1 and jobs = 4 with metrics enabled. *)

module Metric = Obs.Metric
module Registry = Obs.Registry
module Sink = Obs.Sink
module Span = Obs.Span
module Json = Obs.Json
module Snapshot = Obs.Snapshot
module Pool = Runtime.Pool
module Exp = Experiments.Registry
module Exp_result = Experiments.Exp_result

(* --- counters and gauges --- *)

let test_counter () =
  let reg = Registry.create () in
  let c = Registry.counter reg "a.count" in
  Alcotest.(check int) "fresh counter is 0" 0 (Metric.Counter.value c);
  Metric.Counter.incr c;
  Metric.Counter.add c 41;
  Alcotest.(check int) "incr + add" 42 (Metric.Counter.value c);
  let c' = Registry.counter reg "a.count" in
  Metric.Counter.incr c';
  Alcotest.(check int) "same name, same instrument" 43 (Metric.Counter.value c)

let test_gauge () =
  let reg = Registry.create () in
  let g = Registry.gauge reg "a.gauge" in
  Alcotest.(check (float 0.0)) "fresh gauge is 0" 0.0 (Metric.Gauge.value g);
  Metric.Gauge.set g 2.5;
  Metric.Gauge.set g 1.25;
  Alcotest.(check (float 0.0)) "last set wins" 1.25 (Metric.Gauge.value g)

let test_kind_mismatch () =
  let reg = Registry.create () in
  ignore (Registry.counter reg "x");
  Alcotest.check_raises "counter reused as gauge"
    (Invalid_argument "Obs.Registry: \"x\" is a counter, not the requested kind")
    (fun () -> ignore (Registry.gauge reg "x"))

(* --- histograms --- *)

let test_histogram_stats () =
  let reg = Registry.create () in
  let h = Registry.histogram reg "h" in
  Alcotest.(check int) "empty count" 0 (Metric.Histogram.count h);
  List.iter (Metric.Histogram.observe h) [ 5; 100; 1_000_000 ];
  Alcotest.(check int) "count" 3 (Metric.Histogram.count h);
  Alcotest.(check int) "sum" 1_000_105 (Metric.Histogram.sum_ns h);
  Alcotest.(check int) "min" 5 (Metric.Histogram.min_ns h);
  Alcotest.(check int) "max" 1_000_000 (Metric.Histogram.max_ns h)

let test_histogram_buckets () =
  let reg = Registry.create () in
  let h = Registry.histogram reg "h" ~bounds:[| 10; 100 |] in
  (* edges: <=10, <=100, +Inf *)
  List.iter (Metric.Histogram.observe h) [ 1; 10; 11; 100; 101; 5_000 ];
  let buckets = Metric.Histogram.buckets h in
  Alcotest.(check (list (pair int int)))
    "cumulative-free per-bucket counts"
    [ (10, 2); (100, 2); (max_int, 2) ]
    (Array.to_list buckets)

(* --- spans --- *)

let test_span_nesting () =
  let reg = Registry.create () in
  let sink = Sink.of_registry reg in
  Span.with_ sink "outer" (fun () ->
      Span.with_ sink "inner" (fun () -> ignore (Sys.opaque_identity 0));
      Span.with_ sink "inner" (fun () -> ignore (Sys.opaque_identity 1)));
  let outer = Registry.histogram reg "outer" in
  let inner = Registry.histogram reg "inner" in
  Alcotest.(check int) "outer observed once" 1 (Metric.Histogram.count outer);
  Alcotest.(check int) "inner observed twice" 2 (Metric.Histogram.count inner);
  Alcotest.(check bool) "outer spans both inners" true
    (Metric.Histogram.sum_ns outer >= Metric.Histogram.sum_ns inner)

let test_span_null_sink () =
  Span.with_ Sink.null "h" (fun () -> ());
  (* raising inside a span still records into the live sink *)
  let reg = Registry.create () in
  let sink = Sink.of_registry reg in
  (try Span.with_ sink "raises" (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "span recorded on raise" 1
    (Metric.Histogram.count (Registry.histogram reg "raises"))

(* The disabled hot path must not allocate: entering/exiting a span on
   the null sink is a pair of immediate-value operations. Measured via
   the domain-local minor allocation counter. *)
let test_null_sink_no_alloc () =
  let span_once () =
    let s = Span.enter Sink.null "h" in
    Span.exit s
  in
  (* warm up: any one-time lazy setup happens outside the measurement *)
  for _ = 1 to 100 do
    span_once ()
  done;
  let before = (Gc.quick_stat ()).Gc.minor_words in
  for _ = 1 to 10_000 do
    span_once ()
  done;
  let after = (Gc.quick_stat ()).Gc.minor_words in
  Alcotest.(check (float 0.0))
    "no minor allocation across 10k null spans" 0.0 (after -. before)

(* --- JSON and snapshots --- *)

let test_json_roundtrip () =
  let src =
    {|{"b":[1,2.5,null,true,"x\n"],"a":{"k":-3},"c":1e2}|}
  in
  match Json.parse src with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok v ->
      let printed = Json.to_string v in
      (match Json.parse printed with
      | Error e -> Alcotest.failf "re-parse failed: %s" e
      | Ok v' ->
          Alcotest.(check string)
            "print/parse/print is stable" printed (Json.to_string v'))

let test_json_rejects_garbage () =
  List.iter
    (fun src ->
      match Json.parse src with
      | Ok _ -> Alcotest.failf "accepted invalid JSON: %s" src
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "\"unterminated"; "{}trailing" ]

(* Golden test: a small registry must serialise to exactly this
   document — stable sorted keys, stable number formatting. *)
let test_snapshot_golden () =
  let reg = Registry.create () in
  Metric.Counter.add (Registry.counter reg "z.count") 7;
  Metric.Counter.add (Registry.counter reg "a.count") 3;
  Metric.Gauge.set (Registry.gauge reg "m.gauge") 0.5;
  let h = Registry.histogram reg "h.lat" ~bounds:[| 10; 100 |] in
  List.iter (Metric.Histogram.observe h) [ 5; 50; 500 ];
  let expected =
    String.concat "\n"
      [
        "{";
        "  \"counters\": {";
        "    \"a.count\": 3,";
        "    \"z.count\": 7";
        "  },";
        "  \"gauges\": {";
        "    \"m.gauge\": 0.5";
        "  },";
        "  \"histograms\": {";
        "    \"h.lat\": {";
        "      \"count\": 3,";
        "      \"sum_ns\": 555,";
        "      \"min_ns\": 5,";
        "      \"max_ns\": 500,";
        "      \"mean_ns\": 185.0,";
        "      \"p50_ns\": 55.0,";
        "      \"p95_ns\": 439.99999999999989,";
        "      \"p99_ns\": 487.99999999999989,";
        "      \"buckets\": [";
        "        [10, 1],";
        "        [100, 1],";
        "        [\"+Inf\", 1]";
        "      ]";
        "    }";
        "  }";
        "}";
        "";
      ]
  in
  Alcotest.(check string) "golden snapshot" expected
    (Snapshot.to_json_string reg)

(* Percentiles are bucket interpolations clamped by the exact min/max:
   a one-sample histogram must report that sample everywhere, and a
   uniform fill must put p50 mid-bucket. *)
let test_percentiles () =
  let reg = Registry.create () in
  let one = Registry.histogram reg "one" ~bounds:[| 10; 100 |] in
  Alcotest.(check (option (float 0.0)))
    "empty histogram has no percentile" None
    (Snapshot.percentile_ns one ~q:0.5);
  Metric.Histogram.observe one 42;
  List.iter
    (fun q ->
      Alcotest.(check (option (float 0.0)))
        (Printf.sprintf "single sample at q=%.2f" q)
        (Some 42.0)
        (Snapshot.percentile_ns one ~q))
    [ 0.5; 0.95; 0.99; 1.0 ];
  let h = Registry.histogram reg "h" ~bounds:[| 10; 100 |] in
  List.iter (Metric.Histogram.observe h) [ 5; 50; 500 ];
  Alcotest.(check (option (float 1e-9)))
    "p50 interpolates inside the middle bucket" (Some 55.0)
    (Snapshot.percentile_ns h ~q:0.5);
  Alcotest.(check (option (float 1e-9)))
    "p95 clamps the overflow bucket to max_ns"
    (Some 440.0)
    (Snapshot.percentile_ns h ~q:0.95)

let test_prometheus () =
  let reg = Registry.create () in
  Metric.Counter.add (Registry.counter reg "cache.hits") 3;
  Metric.Gauge.set (Registry.gauge reg "pool.busy") 0.5;
  let h = Registry.histogram reg "sim.step_ns" ~bounds:[| 10; 100 |] in
  List.iter (Metric.Histogram.observe h) [ 5; 50; 500 ];
  let expected =
    String.concat "\n"
      [
        "# TYPE mobisim_cache_hits counter";
        "mobisim_cache_hits 3";
        "# TYPE mobisim_pool_busy gauge";
        "mobisim_pool_busy 0.5";
        "# TYPE mobisim_sim_step_ns histogram";
        "mobisim_sim_step_ns_bucket{le=\"10\"} 1";
        "mobisim_sim_step_ns_bucket{le=\"100\"} 2";
        "mobisim_sim_step_ns_bucket{le=\"+Inf\"} 3";
        "mobisim_sim_step_ns_sum 555";
        "mobisim_sim_step_ns_count 3";
        "";
      ]
  in
  Alcotest.(check string) "prometheus exposition" expected
    (Snapshot.to_prometheus reg)

let test_snapshot_parse_validate () =
  let reg = Registry.create () in
  Metric.Counter.incr (Registry.counter reg "c");
  Metric.Histogram.observe (Registry.histogram reg "h") 123;
  let doc = Snapshot.to_json_string reg in
  (match Snapshot.parse doc with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "snapshot rejected its own output: %s" e);
  match Snapshot.parse {|{"counters":{},"gauges":{}}|} with
  | Ok _ -> Alcotest.fail "accepted snapshot missing histograms"
  | Error _ -> ()

(* --- integration: metrics are pure observation --- *)

let with_ambient_jobs jobs fn =
  Fun.protect
    ~finally:(fun () -> Pool.set_ambient_jobs 1)
    (fun () ->
      Pool.set_ambient_jobs jobs;
      fn ())

let with_ambient_sink sink fn =
  Fun.protect
    ~finally:(fun () ->
      Sink.set_ambient Sink.null;
      Pool.set_ambient_metrics Sink.null)
    (fun () ->
      Sink.set_ambient sink;
      Pool.set_ambient_metrics sink;
      fn ())

let render_e1 () =
  let entry =
    match Exp.find "E1" with
    | Some e -> e
    | None -> Alcotest.fail "E1 missing from registry"
  in
  let buf = Buffer.create (1 lsl 12) in
  let results =
    Exp.run_entries ~quick:true ~seed:0
      ~on_result:(fun r -> Buffer.add_string buf (Exp_result.to_csv r))
      [ entry ]
  in
  (Buffer.contents buf, List.map Exp_result.to_csv results)

let test_byte_identical_with_metrics () =
  let baseline, baseline_csv = with_ambient_jobs 1 render_e1 in
  List.iter
    (fun jobs ->
      let reg = Registry.create () in
      let rendered, csv =
        with_ambient_sink (Sink.of_registry reg) (fun () ->
            with_ambient_jobs jobs render_e1)
      in
      Alcotest.(check (list string))
        (Printf.sprintf "CSV identical, metrics on, jobs=%d" jobs)
        baseline_csv csv;
      Alcotest.(check string)
        (Printf.sprintf "rendered output identical, metrics on, jobs=%d" jobs)
        baseline rendered;
      (* and the metrics themselves were live, not dead weight *)
      match List.assoc_opt "sim.steps" (Registry.to_list reg) with
      | Some (Registry.Counter c) ->
          Alcotest.(check bool)
            (Printf.sprintf "sim.steps counted at jobs=%d" jobs)
            true
            (Metric.Counter.value c > 0)
      | _ -> Alcotest.fail "sim.steps counter missing with metrics on")
    [ 1; 4 ]

let () =
  Alcotest.run "obs"
    [
      ( "instruments",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
          Alcotest.test_case "histogram stats" `Quick test_histogram_stats;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "null sink inert" `Quick test_span_null_sink;
          Alcotest.test_case "null sink no-alloc" `Quick test_null_sink_no_alloc;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "json rejects garbage" `Quick
            test_json_rejects_garbage;
          Alcotest.test_case "golden" `Quick test_snapshot_golden;
          Alcotest.test_case "percentiles" `Quick test_percentiles;
          Alcotest.test_case "prometheus" `Quick test_prometheus;
          Alcotest.test_case "parse + validate" `Quick
            test_snapshot_parse_validate;
        ] );
      ( "integration",
        [
          Alcotest.test_case "byte-identical across jobs with metrics" `Quick
            test_byte_identical_with_metrics;
        ] );
    ]
