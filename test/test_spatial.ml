(* Tests for the bucket-grid spatial index, validated against a brute
   force O(k^2) pair scan. *)

let brute_pairs grid ~radius positions =
  let k = Array.length positions in
  let out = ref [] in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      if Grid.manhattan grid positions.(i) positions.(j) <= radius then
        out := (i, j) :: !out
    done
  done;
  List.sort compare !out

let index_pairs grid ~radius positions =
  let index = Spatial.create grid ~radius in
  Spatial.rebuild index ~positions;
  let out = ref [] in
  Spatial.iter_close_pairs index ~f:(fun i j -> out := (i, j) :: !out);
  List.sort compare !out

let test_matches_brute_force_various () =
  let grid = Grid.create ~side:20 () in
  let rng = Prng.of_seed 100 in
  List.iter
    (fun (k, radius) ->
      for _ = 1 to 10 do
        let positions = Array.init k (fun _ -> Grid.random_node grid rng) in
        Alcotest.(check (list (pair int int)))
          (Printf.sprintf "k=%d r=%d" k radius)
          (brute_pairs grid ~radius positions)
          (index_pairs grid ~radius positions)
      done)
    [ (1, 0); (2, 0); (10, 0); (10, 1); (20, 3); (40, 5); (15, 19); (30, 40) ]

let test_radius_zero_cohabitation () =
  let grid = Grid.create ~side:4 () in
  (* agents 0,2 share a node; 1 is alone; 3,4,5 share another *)
  let positions = [| 5; 7; 5; 9; 9; 9 |] in
  let pairs = index_pairs grid ~radius:0 positions in
  Alcotest.(check (list (pair int int)))
    "exact cohabitation"
    [ (0, 2); (3, 4); (3, 5); (4, 5) ]
    pairs

let test_pairs_ordered_and_unique () =
  let grid = Grid.create ~side:10 () in
  let rng = Prng.of_seed 7 in
  let positions = Array.init 30 (fun _ -> Grid.random_node grid rng) in
  let index = Spatial.create grid ~radius:4 in
  Spatial.rebuild index ~positions;
  let seen = Hashtbl.create 64 in
  Spatial.iter_close_pairs index ~f:(fun i j ->
      Alcotest.(check bool) "i < j" true (i < j);
      Alcotest.(check bool) "no duplicates" false (Hashtbl.mem seen (i, j));
      Hashtbl.replace seen (i, j) ())

let test_count_close_pairs () =
  let grid = Grid.create ~side:12 () in
  let rng = Prng.of_seed 9 in
  let positions = Array.init 25 (fun _ -> Grid.random_node grid rng) in
  let index = Spatial.create grid ~radius:2 in
  Spatial.rebuild index ~positions;
  Alcotest.(check int) "count = brute force"
    (List.length (brute_pairs grid ~radius:2 positions))
    (Spatial.count_close_pairs index)

let test_rebuild_replaces () =
  let grid = Grid.create ~side:6 () in
  let index = Spatial.create grid ~radius:0 in
  Spatial.rebuild index ~positions:[| 0; 0 |];
  Alcotest.(check int) "one pair" 1 (Spatial.count_close_pairs index);
  Spatial.rebuild index ~positions:[| 0; 35 |];
  Alcotest.(check int) "pairs replaced" 0 (Spatial.count_close_pairs index)

let test_radius_getter_and_invalid () =
  let grid = Grid.create ~side:6 () in
  let index = Spatial.create grid ~radius:3 in
  Alcotest.(check int) "radius" 3 (Spatial.radius index);
  Alcotest.check_raises "negative radius"
    (Invalid_argument "Spatial.create: negative radius") (fun () ->
      ignore (Spatial.create grid ~radius:(-1)))

let test_iter_agents_near () =
  let grid = Grid.create ~side:15 () in
  let rng = Prng.of_seed 21 in
  let positions = Array.init 30 (fun _ -> Grid.random_node grid rng) in
  let index = Spatial.create grid ~radius:2 in
  Spatial.rebuild index ~positions;
  for probe = 0 to Grid.nodes grid - 1 do
    if probe mod 17 = 0 then begin
      let range = 4 in
      let expected =
        List.sort compare
          (List.filteri (fun _ _ -> true)
             (List.filter_map
                (fun i ->
                  if Grid.manhattan grid probe positions.(i) <= range then
                    Some i
                  else None)
                (List.init 30 (fun i -> i))))
      in
      let got = ref [] in
      Spatial.iter_agents_near index probe ~range ~f:(fun i ->
          got := i :: !got);
      Alcotest.(check (list int))
        (Printf.sprintf "agents near node %d" probe)
        expected
        (List.sort compare !got)
    end
  done

let test_iter_agents_near_invalid () =
  let grid = Grid.create ~side:6 () in
  let index = Spatial.create grid ~radius:1 in
  Spatial.rebuild index ~positions:[| 0 |];
  Alcotest.check_raises "negative range"
    (Invalid_argument "Spatial.iter_agents_near: negative range") (fun () ->
      Spatial.iter_agents_near index 0 ~range:(-1) ~f:(fun _ -> ()))

(* --- qcheck: randomized agreement with brute force --- *)

let prop_agreement =
  QCheck.Test.make ~name:"index pairs = brute-force pairs" ~count:200
    QCheck.(
      quad (int_range 2 25) (int_range 1 40) (int_range 0 12) small_int)
    (fun (side, k, radius, seed) ->
      let grid = Grid.create ~side () in
      let rng = Prng.of_seed seed in
      let positions = Array.init k (fun _ -> Grid.random_node grid rng) in
      brute_pairs grid ~radius positions = index_pairs grid ~radius positions)

let prop_pair_distance =
  QCheck.Test.make ~name:"reported pairs are within radius" ~count:200
    QCheck.(quad (int_range 2 20) (int_range 1 30) (int_range 0 8) small_int)
    (fun (side, k, radius, seed) ->
      let grid = Grid.create ~side () in
      let rng = Prng.of_seed seed in
      let positions = Array.init k (fun _ -> Grid.random_node grid rng) in
      let index = Spatial.create grid ~radius in
      Spatial.rebuild index ~positions;
      let ok = ref true in
      Spatial.iter_close_pairs index ~f:(fun i j ->
          if Grid.manhattan grid positions.(i) positions.(j) > radius then
            ok := false);
      !ok)

(* Degenerate torus layouts: fewer than 3 distinct bucket columns means
   a wrap-aware 3x3 neighbourhood scan would visit the same bucket
   twice, so the index must take the exhaustive-fallback path. Make that
   case explicit instead of relying on the randomized properties to
   stumble into it. *)
let test_degenerate_torus_fallback () =
  (* side=4, radius=2: bucket side 2 -> only 2 bucket columns *)
  let grid = Grid.create ~topology:Grid.Torus ~side:4 () in
  let rng = Prng.of_seed 42 in
  for _ = 1 to 5 do
    let positions = Array.init 12 (fun _ -> Grid.random_node grid rng) in
    Alcotest.(check (list (pair int int)))
      "2 bucket columns matches brute force"
      (brute_pairs grid ~radius:2 positions)
      (index_pairs grid ~radius:2 positions)
  done;
  (* side=3, radius=4: buckets larger than the grid -> 1 bucket column *)
  let tiny = Grid.create ~topology:Grid.Torus ~side:3 () in
  let positions = [| 0; 1; 4; 8; 0; 4 |] in
  Alcotest.(check (list (pair int int)))
    "1 bucket column matches brute force"
    (brute_pairs tiny ~radius:4 positions)
    (index_pairs tiny ~radius:4 positions)

(* --- incremental reconcile ≡ from-scratch rebuild -------------------

   Drive one long-lived index + DSU through a random walk script
   exactly the way the engine does (Delta -> reconcile, Full -> reset +
   re-union) and check the resulting components against a freshly built
   index + freshly unioned DSU after every step. Churn scripts insert
   masked rebuilds, which force the Full path and exercise the
   Delta/Full transitions on either side of a mask. *)

let vec_of_coords coords =
  let v =
    Bigarray.Array1.create Bigarray.Int32 Bigarray.c_layout
      (Array.length coords)
  in
  Array.iteri (fun i c -> Bigarray.Array1.set v i (Int32.of_int c)) coords;
  v

let components_agree k inc scratch =
  let ok = ref true in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      if Dsu.same_set inc i j <> Dsu.same_set scratch i j then ok := false
    done
  done;
  !ok

let prop_incremental_matches_scratch ~torus ~churn =
  let name =
    Printf.sprintf "incremental reconcile = scratch rebuild (%s%s)"
      (if torus then "torus" else "bounded")
      (if churn then ", churn" else "")
  in
  QCheck.Test.make ~name ~count:80 (Qgen.walk_script ~churn ()) (fun s ->
      (* a torus needs side >= 3; widening the grid keeps the generated
         coordinates valid *)
      let side = if torus then max 3 s.Qgen.ws_side else s.Qgen.ws_side in
      let k = s.Qgen.ws_agents in
      let grid =
        if torus then Grid.create ~topology:Grid.Torus ~side ()
        else Grid.create ~side ()
      in
      let xs = vec_of_coords (Array.map fst s.Qgen.ws_starts) in
      let ys = vec_of_coords (Array.map snd s.Qgen.ws_starts) in
      let index = Spatial.create grid ~radius:0 in
      let dsu = Dsu.create k in
      let ok = ref true in
      let sync present =
        match Spatial.rebuild_soa ?present index ~xs ~ys ~n:k with
        | Spatial.Full ->
            Dsu.reset dsu;
            Spatial.iter_close_pairs index ~f:(fun i j ->
                ignore (Dsu.union dsu i j))
        | Spatial.Delta ->
            Spatial.reconcile index
              ~dissolve:(fun i -> Dsu.dissolve dsu i)
              ~union:(fun i j -> ignore (Dsu.union dsu i j))
      in
      let check present =
        let positions =
          Array.init k (fun i ->
              Grid.index grid
                ~x:(Int32.to_int (Bigarray.Array1.get xs i))
                ~y:(Int32.to_int (Bigarray.Array1.get ys i)))
        in
        let fresh = Spatial.create grid ~radius:0 in
        Spatial.rebuild ?present fresh ~positions;
        let scratch = Dsu.create k in
        Spatial.iter_close_pairs fresh ~f:(fun i j ->
            ignore (Dsu.union scratch i j));
        if not (components_agree k dsu scratch) then ok := false
      in
      let move v d =
        let nv = v + d in
        if torus then (nv + side) mod side
        else if nv < 0 || nv >= side then v
        else nv
      in
      sync None;
      check None;
      List.iter
        (fun (moves, present) ->
          Array.iteri
            (fun i (dx, dy) ->
              let x = Int32.to_int (Bigarray.Array1.get xs i) in
              let y = Int32.to_int (Bigarray.Array1.get ys i) in
              Bigarray.Array1.set xs i (Int32.of_int (move x dx));
              Bigarray.Array1.set ys i (Int32.of_int (move y dy)))
            moves;
          sync present;
          check present)
        s.Qgen.ws_steps;
      !ok)

let test_iter_agents_near_torus () =
  let grid = Grid.create ~topology:Grid.Torus ~side:10 () in
  let rng = Prng.of_seed 31 in
  let positions = Array.init 20 (fun _ -> Grid.random_node grid rng) in
  let index = Spatial.create grid ~radius:2 in
  Spatial.rebuild index ~positions;
  let probe = Grid.index grid ~x:0 ~y:0 in
  let range = 3 in
  let expected =
    List.sort compare
      (List.filter_map
         (fun i ->
           if Grid.manhattan grid probe positions.(i) <= range then Some i
           else None)
         (List.init 20 (fun i -> i)))
  in
  let got = ref [] in
  Spatial.iter_agents_near index probe ~range ~f:(fun i -> got := i :: !got);
  Alcotest.(check (list int)) "wrap-aware query" expected
    (List.sort compare !got)

let prop_torus_agreement =
  QCheck.Test.make ~name:"torus index pairs = brute-force (wrap distances)"
    ~count:200
    QCheck.(
      quad (int_range 3 25) (int_range 1 40) (int_range 0 12) small_int)
    (fun (side, k, radius, seed) ->
      let grid = Grid.create ~topology:Grid.Torus ~side () in
      let rng = Prng.of_seed seed in
      let positions = Array.init k (fun _ -> Grid.random_node grid rng) in
      brute_pairs grid ~radius positions = index_pairs grid ~radius positions)

let () =
  Alcotest.run "spatial"
    [
      ( "correctness",
        [
          Alcotest.test_case "matches brute force" `Quick
            test_matches_brute_force_various;
          Alcotest.test_case "radius 0 cohabitation" `Quick
            test_radius_zero_cohabitation;
          Alcotest.test_case "pairs ordered, unique" `Quick
            test_pairs_ordered_and_unique;
          Alcotest.test_case "count" `Quick test_count_close_pairs;
          Alcotest.test_case "rebuild replaces" `Quick test_rebuild_replaces;
          Alcotest.test_case "radius getter / invalid" `Quick
            test_radius_getter_and_invalid;
        ] );
      ( "queries",
        [
          Alcotest.test_case "agents near node" `Quick test_iter_agents_near;
          Alcotest.test_case "invalid range" `Quick
            test_iter_agents_near_invalid;
          Alcotest.test_case "torus query" `Quick test_iter_agents_near_torus;
          Alcotest.test_case "degenerate torus fallback" `Quick
            test_degenerate_torus_fallback;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_agreement; prop_pair_distance; prop_torus_agreement;
            prop_incremental_matches_scratch ~torus:false ~churn:false;
            prop_incremental_matches_scratch ~torus:true ~churn:false;
            prop_incremental_matches_scratch ~torus:false ~churn:true;
            prop_incremental_matches_scratch ~torus:true ~churn:true;
          ] );
    ]
