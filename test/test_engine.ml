(* Tests for the generic engine layers introduced by the Space/Exchange/
   Engine refactor: cross-engine equivalence (the satellites are now
   instances of one engine, so engines that model the same process must
   produce identical runs), degenerate parameter values at the space
   level, and unit tests of each exchange policy on hand-built
   visibility graphs. *)

module Config = Mobile_network.Config
module Simulation = Mobile_network.Simulation
module Exchange = Mobile_network.Exchange
module Rumor_set = Mobile_network.Rumor_set
module Space = Mobile_network.Space
module Clementi = Baselines.Clementi
module Barrier_sim = Barriers.Barrier_sim

(* --- cross-engine equivalence --------------------------------------------- *)

(* The Clementi baseline is by construction the grid engine with the
   jump kernel and single-hop exchange; running the same parameters
   through the core Simulation front end must give the identical run
   (same streams, same draw order, same exchange rule). *)
let test_clementi_equals_grid_engine () =
  let side = 24 and agents = 40 and big_r = 3 and rho = 2 in
  let seed = 5 and trial = 2 and max_steps = 5_000 in
  let c =
    Clementi.broadcast
      { Clementi.side; agents; big_r; rho; seed; trial; max_steps }
  in
  let s =
    Simulation.run_config
      (Config.make ~side ~agents ~radius:big_r ~kernel:(Walk.Jump rho)
         ~exchange:Config.Single_hop ~seed ~trial ~max_steps ())
  in
  Alcotest.(check int) "same steps" c.Clementi.steps s.Simulation.steps;
  Alcotest.(check int) "same informed" c.Clementi.informed
    s.Simulation.informed;
  Alcotest.(check bool) "same outcome" true
    (match (c.Clementi.outcome, s.Simulation.outcome) with
    | Clementi.Completed, Simulation.Completed
    | Clementi.Timed_out, Simulation.Timed_out ->
        true
    | _ -> false)

(* run (full engine report) and broadcast (condensed report) consume the
   same streams in every satellite. *)
let test_run_agrees_with_broadcast () =
  let module E = Mobile_network.Engine in
  let ccfg =
    { Clementi.side = 16; agents = 24; big_r = 2; rho = 2; seed = 3;
      trial = 1; max_steps = 2_000 }
  in
  let cb = Clementi.broadcast ccfg and cr = Clementi.run ccfg in
  Alcotest.(check int) "clementi steps" cb.Clementi.steps cr.E.steps;
  Alcotest.(check int) "clementi informed" cb.Clementi.informed cr.E.informed;
  let ucfg =
    { Continuum.box_side = 8.; agents = 32; radius = 1.; sigma = 0.25;
      seed = 3; trial = 1; max_steps = 50_000 }
  in
  let ub = Continuum.broadcast ucfg and ur = Continuum.run ucfg in
  Alcotest.(check int) "continuum steps" ub.Continuum.steps ur.E.steps;
  Alcotest.(check int) "continuum informed" ub.Continuum.informed
    ur.E.informed;
  let domain = Barriers.Domain.central_wall (Grid.create ~side:16 ()) ~gap:2 in
  let bcfg =
    { Barrier_sim.domain; agents = 12; radius = 0; los_blocking = false;
      seed = 3; trial = 1; max_steps = 20_000 }
  in
  let bb = Barrier_sim.broadcast bcfg and br = Barrier_sim.run bcfg in
  Alcotest.(check int) "barrier steps" bb.Barrier_sim.steps br.E.steps;
  Alcotest.(check int) "barrier informed" bb.Barrier_sim.informed
    br.E.informed

(* Recorded histories are per-step series consistent with the report:
   steps + 1 entries (index 0 is the initial state), final entry equal
   to the final count — across all engine instances. *)
let test_history_consistent () =
  let module E = Mobile_network.Engine in
  let check_history label (r : E.report) =
    match r.E.history with
    | None -> Alcotest.failf "%s: no history" label
    | Some h ->
        Alcotest.(check int)
          (label ^ ": history length")
          (r.E.steps + 1)
          (Array.length h.E.informed);
        Alcotest.(check int)
          (label ^ ": final informed")
          r.E.informed
          h.E.informed.(Array.length h.E.informed - 1)
  in
  check_history "clementi"
    (Clementi.run ~record_history:true
       { Clementi.side = 16; agents = 24; big_r = 2; rho = 2; seed = 1;
         trial = 0; max_steps = 2_000 });
  check_history "continuum"
    (Continuum.run ~record_history:true
       { Continuum.box_side = 8.; agents = 32; radius = 1.; sigma = 0.25;
         seed = 1; trial = 0; max_steps = 50_000 });
  check_history "barrier"
    (Barrier_sim.run ~record_history:true
       { Barrier_sim.domain =
           Barriers.Domain.unobstructed (Grid.create ~side:16 ());
         agents = 12; radius = 0; los_blocking = false; seed = 1; trial = 0;
         max_steps = 20_000 })

(* --- degenerate parameters ------------------------------------------------ *)

let test_jump_zero_is_identity () =
  let grid = Grid.create ~side:8 () in
  let rng = Prng.of_seed 9 and witness = Prng.of_seed 9 in
  let v = Grid.index grid ~x:3 ~y:4 in
  Alcotest.(check int) "stays put" v (Walk.step grid (Walk.Jump 0) rng v);
  (* rho = 0 must also consume no randomness *)
  Alcotest.(check int) "no draws" (Prng.int witness 1_000_000)
    (Prng.int rng 1_000_000)

let test_static_disconnected_times_out () =
  (* rho = 0 and R = 0: nobody moves, nobody meets — the run must time
     out with only the source informed *)
  let r =
    Clementi.broadcast
      { Clementi.side = 8; agents = 6; big_r = 0; rho = 0; seed = 2;
        trial = 0; max_steps = 50 }
  in
  Alcotest.(check bool) "timed out" true
    (match r.Clementi.outcome with
    | Clementi.Timed_out -> true
    | Clementi.Completed -> false);
  Alcotest.(check int) "only the source" 1 r.Clementi.informed

let test_full_radius_instant () =
  (* R covering the whole grid: the time-0 exchange already floods *)
  let r =
    Clementi.broadcast
      { Clementi.side = 8; agents = 6; big_r = 16; rho = 0; seed = 2;
        trial = 0; max_steps = 50 }
  in
  Alcotest.(check int) "instant" 0 r.Clementi.steps;
  Alcotest.(check int) "everyone informed" 6 r.Clementi.informed

let test_continuum_zero_radius_no_pairs () =
  let module S = Continuum.Space in
  let s = S.create ~box_side:4. ~radius:0. ~sigma:0.25 ~agents:8 in
  let pos = S.init_positions s (Prng.of_seed 1) ~n:8 in
  ignore (S.rebuild_index s pos : Space.index_update);
  let pairs = ref 0 in
  S.iter_close_pairs s ~f:(fun _ _ -> incr pairs);
  Alcotest.(check int) "no visibility edges at radius 0" 0 !pairs

let test_continuum_zero_sigma_is_static () =
  let module S = Continuum.Space in
  let s = S.create ~box_side:4. ~radius:1. ~sigma:0. ~agents:8 in
  let pos = S.init_positions s (Prng.of_seed 1) ~n:8 in
  let xs0 = Array.copy pos.S.xs and ys0 = Array.copy pos.S.ys in
  let rngs = Array.init 8 (fun i -> Prng.of_seed i) in
  S.move_all s pos rngs Space.Mobile_all;
  Alcotest.(check bool) "positions unchanged" true
    (pos.S.xs = xs0 && pos.S.ys = ys0)

(* --- exchange policies on hand-built graphs ------------------------------- *)

let test_flood_single () =
  let informed = [| true; false; false; false; false |] in
  let x = Exchange.create ~population:5 ~predators:0 ~informed ~rumors:[||] in
  x.Exchange.informed_count <- 1;
  (* components {0, 1, 2} and {3, 4}; only the first holds the rumor *)
  let dsu = Dsu.create 5 in
  ignore (Dsu.union dsu 0 1);
  ignore (Dsu.union dsu 1 2);
  ignore (Dsu.union dsu 3 4);
  Exchange.flood_single x ~dsu;
  Alcotest.(check (array bool)) "informed component floods"
    [| true; true; true; false; false |]
    informed;
  Alcotest.(check int) "count tracked" 3 x.Exchange.informed_count

let test_flood_gossip () =
  let population = 4 in
  let rumors =
    Array.init population (fun i -> Rumor_set.singleton ~capacity:population i)
  in
  let informed = Array.init population (fun i -> i = 0) in
  let x = Exchange.create ~population ~predators:0 ~informed ~rumors in
  x.Exchange.informed_count <- 1;
  x.Exchange.total_known <- population;
  (* component {0, 1, 2}; agent 3 is isolated *)
  let dsu = Dsu.create population in
  ignore (Dsu.union dsu 0 1);
  ignore (Dsu.union dsu 1 2);
  Exchange.flood_gossip x ~dsu;
  Array.iteri
    (fun i s ->
      let expected = if i < 3 then 3 else 1 in
      Alcotest.(check int)
        (Printf.sprintf "agent %d cardinal" i)
        expected (Rumor_set.cardinal s))
    rumors;
  Alcotest.(check int) "total known" 10 x.Exchange.total_known;
  (* rumor-0 tracking: agents 1 and 2 learned rumor 0 *)
  Alcotest.(check int) "informed count" 3 x.Exchange.informed_count

let test_single_hop_no_chaining () =
  (* path 0 - 1 - 2 with only agent 0 informed: the rumor crosses one
     edge per step, so agent 2 must NOT learn it this step *)
  let informed = [| true; false; false |] in
  let x = Exchange.create ~population:3 ~predators:0 ~informed ~rumors:[||] in
  x.Exchange.informed_count <- 1;
  let iter_pairs f =
    f 0 1;
    f 1 2
  in
  Exchange.single_hop_single x ~iter_pairs;
  Alcotest.(check (array bool)) "one hop only" [| true; true; false |] informed;
  Alcotest.(check int) "count" 2 x.Exchange.informed_count;
  (* the next step carries it the rest of the way *)
  Exchange.single_hop_single x ~iter_pairs;
  Alcotest.(check (array bool)) "second hop" [| true; true; true |] informed

let test_single_hop_gossip_pre_step_snapshots () =
  let population = 3 in
  let rumors =
    Array.init population (fun i -> Rumor_set.singleton ~capacity:population i)
  in
  let informed = Array.init population (fun i -> i = 0) in
  let x = Exchange.create ~population ~predators:0 ~informed ~rumors in
  x.Exchange.informed_count <- 1;
  x.Exchange.total_known <- population;
  let iter_pairs f =
    f 0 1;
    f 1 2
  in
  Exchange.single_hop_gossip x ~iter_pairs;
  (* all deliveries read pre-step sets: 1 hears from both neighbours,
     but 0 and 2 only hear 1's original singleton *)
  Alcotest.(check int) "agent 0" 2 (Rumor_set.cardinal rumors.(0));
  Alcotest.(check int) "agent 1" 3 (Rumor_set.cardinal rumors.(1));
  Alcotest.(check int) "agent 2" 2 (Rumor_set.cardinal rumors.(2));
  Alcotest.(check bool) "2 did not get rumor 0 through 1" false
    (Rumor_set.mem rumors.(2) 0);
  Alcotest.(check int) "total known" 7 x.Exchange.total_known;
  Alcotest.(check int) "rumor-0 informed" 2 x.Exchange.informed_count

let test_catch_preys_no_chaining () =
  (* predator 0; preys 1, 2. Edges 0-1 and 1-2: prey 1 is caught by
     direct contact, prey 2 survives (catching never chains) *)
  let informed = [| true; false; false |] in
  let x = Exchange.create ~population:3 ~predators:1 ~informed ~rumors:[||] in
  x.Exchange.informed_count <- 1;
  x.Exchange.live_preys <- 2;
  let iter_pairs f =
    f 0 1;
    f 1 2
  in
  Exchange.catch_preys x ~iter_pairs;
  Alcotest.(check (array bool)) "direct catch only" [| true; true; false |]
    informed;
  Alcotest.(check int) "one prey left" 1 x.Exchange.live_preys;
  (* idempotent on an already-caught prey *)
  Exchange.catch_preys x ~iter_pairs;
  Alcotest.(check int) "no double catch" 1 x.Exchange.live_preys

let () =
  Alcotest.run "engine"
    [
      ( "cross-engine",
        [
          Alcotest.test_case "clementi = grid engine with jump kernel" `Quick
            test_clementi_equals_grid_engine;
          Alcotest.test_case "run agrees with broadcast" `Quick
            test_run_agrees_with_broadcast;
          Alcotest.test_case "histories consistent" `Quick
            test_history_consistent;
        ] );
      ( "degenerate",
        [
          Alcotest.test_case "jump rho=0 is identity" `Quick
            test_jump_zero_is_identity;
          Alcotest.test_case "static disconnected times out" `Quick
            test_static_disconnected_times_out;
          Alcotest.test_case "full radius instant" `Quick
            test_full_radius_instant;
          Alcotest.test_case "continuum radius=0 has no pairs" `Quick
            test_continuum_zero_radius_no_pairs;
          Alcotest.test_case "continuum sigma=0 is static" `Quick
            test_continuum_zero_sigma_is_static;
        ] );
      ( "policies",
        [
          Alcotest.test_case "flood_single" `Quick test_flood_single;
          Alcotest.test_case "flood_gossip" `Quick test_flood_gossip;
          Alcotest.test_case "single_hop no chaining" `Quick
            test_single_hop_no_chaining;
          Alcotest.test_case "single_hop_gossip snapshots" `Quick
            test_single_hop_gossip_pre_step_snapshots;
          Alcotest.test_case "catch_preys no chaining" `Quick
            test_catch_preys_no_chaining;
        ] );
    ]
