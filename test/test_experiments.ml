(* End-to-end reproduction tests: every experiment of the registry runs
   in quick mode and must (a) produce a well-formed result and (b) pass
   all of its own shape checks. A regression in the engine that breaks a
   theorem's predicted shape therefore fails `dune runtest`. *)

module Registry = Experiments.Registry
module Exp_result = Experiments.Exp_result
module Table = Experiments.Table

let well_formed (r : Exp_result.t) =
  Alcotest.(check bool) "id non-empty" true (String.length r.Exp_result.id > 0);
  Alcotest.(check bool) "title non-empty" true (String.length r.title > 0);
  Alcotest.(check bool) "claim non-empty" true (String.length r.claim > 0);
  Alcotest.(check bool) "has measurements" true (Table.row_count r.table > 0);
  Alcotest.(check bool) "has checks" true (r.checks <> []);
  (* rendering and CSV export must not raise *)
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  Exp_result.render fmt r;
  Format.pp_print_flush fmt ();
  Alcotest.(check bool) "render non-empty" true (Buffer.length buf > 0);
  Alcotest.(check bool) "csv non-empty" true
    (String.length (Exp_result.to_csv r) > 0)

let experiment_case (entry : Registry.entry) =
  Alcotest.test_case
    (Printf.sprintf "%s: %s" entry.Registry.id entry.Registry.summary)
    `Slow
    (fun () ->
      let r = entry.Registry.run ~quick:true ~seed:0 () in
      Alcotest.(check string) "id matches registry" entry.Registry.id
        r.Exp_result.id;
      well_formed r;
      List.iter
        (fun (c : Exp_result.check) ->
          Alcotest.(check bool)
            (Printf.sprintf "[%s] %s: %s" r.Exp_result.id c.Exp_result.label
               c.Exp_result.detail)
            true c.Exp_result.passed)
        r.Exp_result.checks)

let test_quick_mode_deterministic () =
  (* same seed, same result tables *)
  let entry = Option.get (Registry.find "E1") in
  let a = entry.Registry.run ~quick:true ~seed:42 () in
  let b = entry.Registry.run ~quick:true ~seed:42 () in
  Alcotest.(check string) "identical CSV" (Exp_result.to_csv a)
    (Exp_result.to_csv b)

let test_seed_changes_results () =
  let entry = Option.get (Registry.find "E1") in
  let a = entry.Registry.run ~quick:true ~seed:1 () in
  let b = entry.Registry.run ~quick:true ~seed:2 () in
  Alcotest.(check bool) "different seeds, different measurements" true
    (Exp_result.to_csv a <> Exp_result.to_csv b)

let test_ids_duplicate_free () =
  let ids = Registry.ids () in
  let sorted = List.sort_uniq compare ids in
  Alcotest.(check int)
    "no duplicate experiment ids" (List.length ids) (List.length sorted);
  (* lookup is case-insensitive, so ids must also be unique up to case *)
  let folded = List.sort_uniq compare (List.map String.uppercase_ascii ids) in
  Alcotest.(check int)
    "no ids colliding case-insensitively" (List.length ids)
    (List.length folded)

let () =
  Alcotest.run "experiments"
    [
      ("reproduction (quick mode)", List.map experiment_case Registry.all);
      ( "harness behaviour",
        [
          Alcotest.test_case "registry ids duplicate-free" `Quick
            test_ids_duplicate_free;
          Alcotest.test_case "deterministic given seed" `Slow
            test_quick_mode_deterministic;
          Alcotest.test_case "seed sensitivity" `Slow test_seed_changes_results;
        ] );
    ]
