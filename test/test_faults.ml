(* State-machine tests for the fault-injection subsystem: plan
   validation and JSON round-trips, the runtime invariants the adversary
   must preserve (informed-set monotonicity, conservation under churn,
   blackout freezes, byzantine role semantics), and the agreement
   between the role-masked fixpoint flood and component flooding. *)

module Plan = Faults.Plan
module Config = Mobile_network.Config
module Simulation = Mobile_network.Simulation
module Exchange = Mobile_network.Exchange

(* --- Plan validation and JSON ------------------------------------------ *)

let expect_invalid label plan =
  match Plan.validate plan with
  | Ok () -> Alcotest.failf "%s: expected validation failure" label
  | Error _ -> ()

let test_plan_validate () =
  Alcotest.(check bool) "empty valid" true (Result.is_ok (Plan.validate Plan.empty));
  expect_invalid "loss > 1" { Plan.empty with Plan.loss_p = 1.5 };
  expect_invalid "loss < 0" { Plan.empty with Plan.loss_p = -0.1 };
  expect_invalid "period 0" { Plan.empty with Plan.duty = Some (0, 0) };
  expect_invalid "off > period" { Plan.empty with Plan.duty = Some (5, 4) };
  expect_invalid "window until < from"
    { Plan.empty with
      Plan.windows = [ { Plan.w_from = 9; w_until = 3; w_agent = None } ] };
  expect_invalid "negative silent id" { Plan.empty with Plan.silent = [ -1 ] };
  expect_invalid "churn leave > 1"
    { Plan.empty with
      Plan.churn = Some { Plan.leave_p = 1.2; return_p = 0.5 } }

let test_plan_json_errors () =
  (match Plan.of_string "{ \"loss_q\": 0.5 }" with
  | Ok _ -> Alcotest.fail "unknown field accepted"
  | Error msg ->
      Alcotest.(check bool) "names the field" true
        (String.length msg > 0));
  (match Plan.of_string "not json" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ());
  match Plan.of_string "{ \"loss_p\": 2.0 }" with
  | Ok _ -> Alcotest.fail "invalid probability accepted"
  | Error _ -> ()

let test_plan_max_agent () =
  Alcotest.(check int) "empty" (-1) (Plan.max_agent_id Plan.empty);
  Alcotest.(check int) "roles and windows" 9
    (Plan.max_agent_id
       { Plan.empty with
         Plan.silent = [ 4 ];
         deaf = [ 2 ];
         windows = [ { Plan.w_from = 0; w_until = 1; w_agent = Some 9 } ] })

let prop_generated_plans_validate =
  QCheck.Test.make ~name:"generated plans validate" ~count:200
    (Qgen.plan ~agents:8) (fun p -> Result.is_ok (Plan.validate p))

let prop_plan_roundtrip =
  QCheck.Test.make ~name:"JSON round-trip is the identity" ~count:200
    (Qgen.plan ~agents:8) (fun p ->
      match Plan.of_string (Plan.to_string p) with
      | Error msg -> QCheck.Test.fail_reportf "re-parse failed: %s" msg
      | Ok p' -> String.equal (Plan.to_string p) (Plan.to_string p'))

(* --- runtime invariants ------------------------------------------------- *)

let cfg ?(side = 16) ?(agents = 8) ?(max_steps = 2000) ?source plan =
  Config.make ~side ~agents ~radius:1 ~seed:7 ~trial:0 ?source ~max_steps
    ~faults:plan ()

(* Step to completion (or the cap), recording the informed count after
   every step (index 0 = after the initial exchange) and running [check]
   against the live simulation each step. *)
let informed_series ?(check = fun _ -> ()) config =
  (* is_done is the protocol predicate alone; the cap lives in [run], so
     a manual stepping loop must enforce it itself *)
  let cap = Config.effective_max_steps config in
  let sim = Simulation.create config in
  let series = ref [ Simulation.informed_count sim ] in
  check sim;
  while (not (Simulation.is_done sim)) && Simulation.time sim < cap do
    Simulation.step sim;
    series := Simulation.informed_count sim :: !series;
    check sim
  done;
  Array.of_list (List.rev !series)

let assert_monotone label series =
  Array.iteri
    (fun t v ->
      if t > 0 && v < series.(t - 1) then
        Alcotest.failf "%s: informed dropped %d -> %d at step %d" label
          series.(t - 1) v t)
    series

let test_monotone_fault_free () =
  assert_monotone "fault-free" (informed_series (cfg Plan.empty))

let test_monotone_loss_only () =
  assert_monotone "loss 0.4"
    (informed_series (cfg { Plan.empty with Plan.loss_p = 0.4 }))

let test_outage_freezes_informed () =
  (* global window: exchanges on steps 5..14 are blacked out, so the
     informed count cannot change there (motion continues) *)
  let plan =
    { Plan.empty with
      Plan.windows = [ { Plan.w_from = 5; w_until = 15; w_agent = None } ] }
  in
  let series = informed_series (cfg plan) in
  assert_monotone "outage" series;
  if Array.length series > 15 then
    for t = 5 to 14 do
      Alcotest.(check int)
        (Printf.sprintf "frozen at step %d" t)
        series.(4) series.(t)
    done

let test_churn_conservation () =
  let k = 8 in
  let plan =
    { Plan.empty with
      Plan.churn = Some { Plan.leave_p = 0.1; return_p = 0.3 } }
  in
  let check sim =
    let p = Simulation.present_count sim in
    if p < 0 || p > k then
      Alcotest.failf "present count %d outside [0, %d]" p k;
    (* the DSU side never loses an agent either: component sizes
       partition the whole population, present or not *)
    if Simulation.time sim mod 10 = 0 then (
      let total = Array.fold_left ( + ) 0 (Simulation.island_sizes sim) in
      Alcotest.(check int) "island sizes partition the population" k total)
  in
  assert_monotone "churn" (informed_series ~check (cfg ~agents:k plan))

let test_no_churn_all_present () =
  let check sim =
    Alcotest.(check int) "all present" 8 (Simulation.present_count sim)
  in
  ignore
    (informed_series ~check (cfg { Plan.empty with Plan.loss_p = 0.2 }))

let test_silent_source_never_spreads () =
  let plan = { Plan.empty with Plan.silent = [ 0 ] } in
  let config = cfg ~max_steps:300 ~source:0 plan in
  let check sim =
    Alcotest.(check int) "only the source knows" 1
      (Simulation.informed_count sim)
  in
  let series = informed_series ~check config in
  Alcotest.(check int) "timed out with one informed" 1
    series.(Array.length series - 1)

let test_deaf_agent_never_learns () =
  let plan = { Plan.empty with Plan.deaf = [ 5 ] } in
  let config = cfg ~max_steps:300 ~source:0 plan in
  let check sim =
    if Simulation.is_informed sim 5 then
      Alcotest.failf "deaf agent informed at step %d" (Simulation.time sim)
  in
  ignore (informed_series ~check config)

let test_replay_identical () =
  let plan =
    { Plan.empty with
      Plan.loss_p = 0.3;
      churn = Some { Plan.leave_p = 0.05; return_p = 0.5 } }
  in
  let a = informed_series (cfg plan) and b = informed_series (cfg plan) in
  Alcotest.(check (array int)) "same informed series replayed" a b

let test_roles_need_broadcast () =
  let bad =
    Config.make ~side:16 ~agents:8 ~radius:1
      ~protocol:Mobile_network.Protocol.Gossip
      ~faults:{ Plan.empty with Plan.silent = [ 0 ] }
      ()
  in
  (match Config.validate bad with
  | Ok () -> Alcotest.fail "gossip with silent agent validated"
  | Error _ -> ());
  let out_of_range =
    Config.make ~side:16 ~agents:8 ~radius:1
      ~faults:{ Plan.empty with Plan.deaf = [ 8 ] }
      ()
  in
  match Config.validate out_of_range with
  | Ok () -> Alcotest.fail "out-of-range deaf agent validated"
  | Error _ -> ()

(* --- masked flood vs component flood ----------------------------------- *)

(* With all-true roles, the fixpoint flood over a pair list must inform
   exactly the union of the components touching an informed agent — the
   equivalence the fault engine's no-roles fast path relies on. *)
let prop_masked_flood_matches_components =
  let n = 12 in
  QCheck.Test.make ~name:"masked flood (all-true roles) = component flood"
    ~count:300
    QCheck.(pair (Qgen.unions n) (int_range 0 (n - 1)))
    (fun (pairs, source) ->
      let fresh () =
        let informed = Array.make n false in
        informed.(source) <- true;
        let ex =
          Exchange.create ~population:n ~predators:0 ~informed ~rumors:[||]
        in
        ex.Exchange.informed_count <- 1;
        ex
      in
      let by_components = fresh () in
      let dsu = Dsu.create n in
      List.iter (fun (i, j) -> ignore (Dsu.union dsu i j)) pairs;
      Exchange.flood_single by_components ~dsu;
      let by_fixpoint = fresh () in
      let all = Array.make n true in
      Exchange.flood_single_masked by_fixpoint
        ~iter_pairs:(fun f -> List.iter (fun (i, j) -> f i j) pairs)
        ~transmits:all ~accepts:all;
      by_components.Exchange.informed_count
      = by_fixpoint.Exchange.informed_count
      && Array.for_all2 Bool.equal by_components.Exchange.informed
           by_fixpoint.Exchange.informed)

(* --- random-plan state sweep ------------------------------------------- *)

(* The harness proper: run short broadcasts under arbitrary generated
   plans and assert the cross-cutting invariants hold throughout. *)
let prop_random_plan_invariants =
  QCheck.Test.make ~name:"invariants hold under arbitrary plans" ~count:25
    (Qgen.plan ~agents:6) (fun plan ->
      let config =
        Config.make ~side:12 ~agents:6 ~radius:1 ~seed:11 ~trial:0
          ~max_steps:300 ~faults:plan ()
      in
      let cap = Config.effective_max_steps config in
      let sim = Simulation.create config in
      let prev = ref (Simulation.informed_count sim) in
      let ok = ref true in
      while (not (Simulation.is_done sim)) && Simulation.time sim < cap do
        Simulation.step sim;
        let now = Simulation.informed_count sim in
        if now < !prev then ok := false;
        prev := now;
        let p = Simulation.present_count sim in
        if p < 0 || p > 6 then ok := false
      done;
      !ok)

let () =
  Alcotest.run "faults"
    [
      ( "plan",
        [
          Alcotest.test_case "validate" `Quick test_plan_validate;
          Alcotest.test_case "json errors" `Quick test_plan_json_errors;
          Alcotest.test_case "max agent id" `Quick test_plan_max_agent;
        ] );
      ( "plan-properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_generated_plans_validate; prop_plan_roundtrip ] );
      ( "invariants",
        [
          Alcotest.test_case "monotone fault-free" `Quick
            test_monotone_fault_free;
          Alcotest.test_case "monotone under loss" `Quick
            test_monotone_loss_only;
          Alcotest.test_case "outage freezes informed" `Quick
            test_outage_freezes_informed;
          Alcotest.test_case "churn conserves agents" `Quick
            test_churn_conservation;
          Alcotest.test_case "no churn, all present" `Quick
            test_no_churn_all_present;
          Alcotest.test_case "silent source never spreads" `Quick
            test_silent_source_never_spreads;
          Alcotest.test_case "deaf agent never learns" `Quick
            test_deaf_agent_never_learns;
          Alcotest.test_case "replay is identical" `Quick
            test_replay_identical;
          Alcotest.test_case "roles need broadcast" `Quick
            test_roles_need_broadcast;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_masked_flood_matches_components; prop_random_plan_invariants ]
      );
    ]
