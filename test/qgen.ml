(* Shared qcheck generators for the property suites (Dsu, Rumor_set and
   the fault-injection state machine). Kept in one module so the fault
   harness exercises the very same input distributions as the unit
   property tests. *)

(* A random union script over [0, n): the raw material for union-find
   properties and for the component side of the fault invariants. *)
let unions ?(max_len = 40) n =
  QCheck.(
    list_of_size
      (Gen.int_range 0 max_len)
      (pair (int_range 0 (n - 1)) (int_range 0 (n - 1))))

(* Rumor-id scripts for bitset properties. *)
let rumor_ids ?(max_len = 60) capacity =
  QCheck.(list_of_size (Gen.int_range 0 max_len) (int_range 0 (capacity - 1)))

(* A structurally valid fault plan over a population of [agents].
   Probabilities land in [0, 1], duty cycles satisfy 0 <= off <= period,
   windows are ordered, role ids are in range — i.e. the generator's
   support is exactly what [Faults.Plan.validate] accepts, so a
   generated plan failing validation is itself a bug. *)
let plan ~agents =
  let open QCheck.Gen in
  let prob = float_bound_inclusive 1.0 in
  let agent = int_range 0 (agents - 1) in
  let window =
    let* w_from = int_range 0 50 in
    let* len = int_range 0 20 in
    let* w_agent = opt agent in
    return { Faults.Plan.w_from; w_until = w_from + len; w_agent }
  in
  let gen =
    let* loss_p = prob in
    let* duty =
      opt
        (let* period = int_range 1 20 in
         let* off = int_range 0 period in
         return (off, period))
    in
    let* windows = list_size (int_range 0 3) window in
    let* churn =
      opt
        (let* leave_p = prob in
         let* return_p = prob in
         return { Faults.Plan.leave_p; return_p })
    in
    let* silent = list_size (int_range 0 2) agent in
    let* deaf = list_size (int_range 0 2) agent in
    return { Faults.Plan.loss_p; duty; windows; churn; silent; deaf }
  in
  QCheck.make ~print:Faults.Plan.to_string gen

(* A random <=1-cell-per-step walk workload over a side x side grid:
   initial positions plus per-step per-agent axis moves, with optional
   per-step churn masks (None = everyone present). Raw material for the
   incremental spatial-index properties: the engine's bucket-delta fast
   path must agree with a from-scratch rebuild on exactly these inputs,
   and masked steps force the index back onto the full-rebuild path so
   the Delta/Full transitions get exercised too. *)
type walk_script = {
  ws_side : int;
  ws_agents : int;
  ws_starts : (int * int) array;
  ws_steps : ((int * int) array * bool array option) list;
      (* per step: per-agent (dx, dy) plus an optional presence mask *)
}

let walk_script ?(max_side = 9) ?(max_agents = 14) ?(max_steps = 14) ~churn ()
    =
  let open QCheck.Gen in
  let dir =
    map
      (function
        | 0 -> (0, 0)
        | 1 -> (1, 0)
        | 2 -> (-1, 0)
        | 3 -> (0, 1)
        | _ -> (0, -1))
      (int_range 0 4)
  in
  let gen =
    let* side = int_range 2 max_side in
    let* agents = int_range 1 max_agents in
    let* steps = int_range 1 max_steps in
    let coord = int_range 0 (side - 1) in
    let* starts = array_size (return agents) (pair coord coord) in
    let mask =
      if churn then
        frequency
          [
            (3, return None);
            (1, map Option.some (array_size (return agents) bool));
          ]
      else return None
    in
    let* moves =
      list_size (return steps) (pair (array_size (return agents) dir) mask)
    in
    return
      { ws_side = side; ws_agents = agents; ws_starts = starts;
        ws_steps = moves }
  in
  QCheck.make gen ~print:(fun s ->
      Printf.sprintf "side=%d agents=%d steps=%d" s.ws_side s.ws_agents
        (List.length s.ws_steps))
