(* Scenario compiler suite: parse/print round-trips, canonical-hash
   invariance and sensitivity, desugaring, and golden file:line:col
   diagnostics for malformed files. *)

module Ast = Scenario.Ast
module Compile = Scenario.Compile
module Protocol = Mobile_network.Protocol

let compile_exn ?filename text =
  match Compile.compile ?filename text with
  | Ok c -> c
  | Error errs -> Alcotest.failf "compile failed: %s" (String.concat "; " errs)

let errors_of ?filename text =
  match Compile.compile ?filename text with
  | Ok _ -> Alcotest.fail "expected diagnostics, compiled cleanly"
  | Error errs -> errs

(* ---- generators -------------------------------------------------------- *)

let protocol_gen =
  QCheck.Gen.oneofl
    [
      Protocol.Broadcast; Protocol.Gossip; Protocol.Frog;
      Protocol.Broadcast_cover; Protocol.Cover_walks;
      Protocol.Predator_prey { preys = 3 };
    ]

let kernel_gen =
  QCheck.Gen.oneofl [ Walk.Lazy_one_fifth; Walk.Simple; Walk.Lazy_half; Walk.Jump 2 ]

let axis_gen g = QCheck.Gen.(list_size (int_range 1 3) g)

let ast_gen =
  QCheck.Gen.(
    let* sides = axis_gen (int_range 8 32) in
    let* agents = axis_gen (int_range 1 16) in
    let* radii = axis_gen (int_range 0 2) in
    let* protocols = axis_gen protocol_gen in
    let* kernels = axis_gen kernel_gen in
    let* torus = bool in
    let* seed = int_range 0 1000 in
    let* trials = int_range 1 4 in
    let* exchange =
      oneofl
        [
          Mobile_network.Config.Flood_component;
          Mobile_network.Config.Single_hop;
        ]
    in
    let* name = oneofl [ ""; "sweep"; "demo run" ] in
    return
      {
        Ast.default with
        Ast.name;
        sides;
        agents;
        radii;
        protocols;
        kernels;
        exchange;
        torus;
        seed;
        trials;
      })

let ast_arbitrary = QCheck.make ~print:Ast.to_string ast_gen

(* ---- properties -------------------------------------------------------- *)

let prop_roundtrip =
  QCheck.Test.make ~name:"to_string |> parse is the identity" ~count:200
    ast_arbitrary (fun ast ->
      match Compile.parse (Ast.to_string ast) with
      | Error errs ->
          QCheck.Test.fail_reportf "canonical form does not re-parse: %s"
            (String.concat "; " errs)
      | Ok ast' -> Ast.equal ast ast')

let prop_hash_spelling_invariant =
  (* field order, omitted defaults, scalar-vs-singleton axes and the
     cosmetic name must not move the hash *)
  QCheck.Test.make ~name:"hash invariant under re-spelling" ~count:200
    ast_arbitrary (fun ast ->
      let canonical_hash = (compile_exn (Ast.to_string ast)).Compile.hash in
      let respelled =
        (* re-emit with reversed field order and the name changed *)
        match Obs.Json.parse (Ast.to_string ast) with
        | Ok (Obs.Json.Assoc fields) ->
            Obs.Json.to_string
              (Obs.Json.Assoc
                 (("name", Obs.Json.String "renamed")
                 :: List.rev
                      (List.filter
                         (fun (k, _) -> not (String.equal k "name"))
                         fields)))
        | Ok _ | Error _ -> Alcotest.fail "canonical form is not an object"
      in
      String.equal canonical_hash (compile_exn respelled).Compile.hash)

let prop_hash_semantic_sensitive =
  QCheck.Test.make ~name:"hash changes under a semantic edit" ~count:200
    ast_arbitrary (fun ast ->
      let h = Ast.hash ast in
      let bumped = { ast with Ast.seed = ast.Ast.seed + 1 } in
      let widened = { ast with Ast.sides = 7 :: ast.Ast.sides } in
      (not (String.equal h (Ast.hash bumped)))
      && not (String.equal h (Ast.hash widened)))

let prop_cells_product =
  QCheck.Test.make ~name:"cells = cross product of axes" ~count:100
    ast_arbitrary (fun ast ->
      List.length (Ast.cells ast)
      = List.length ast.Ast.sides * List.length ast.Ast.agents
        * List.length ast.Ast.radii * List.length ast.Ast.protocols
        * List.length ast.Ast.kernels)

let prop_cell_hash_ignores_seed_trials =
  QCheck.Test.make ~name:"cell hash independent of seed/trials" ~count:100
    ast_arbitrary (fun ast ->
      let cells a = List.map Ast.cell_hash (Ast.cells a) in
      cells ast
      = cells { ast with Ast.seed = ast.Ast.seed + 17; trials = ast.Ast.trials + 1 })

(* ---- defaults and minimal files ---------------------------------------- *)

let test_minimal_file () =
  let c = compile_exn "{}" in
  Alcotest.(check int) "one cell" 1 (List.length c.Compile.cells);
  Alcotest.(check int) "one run" 1 (Compile.total_runs c);
  Alcotest.(check string)
    "empty file hashes like the default AST" (Ast.hash Ast.default)
    c.Compile.hash

let test_scalar_equals_singleton () =
  let scalar = compile_exn {|{"side": 16, "agents": 8}|} in
  let list_ = compile_exn {|{"side": [16], "agents": [8]}|} in
  Alcotest.(check string)
    "scalar and singleton-list spell the same scenario" scalar.Compile.hash
    list_.Compile.hash

let test_desugared_config () =
  let c =
    compile_exn
      {|{"side": 16, "agents": 8, "radius": 1, "protocol": "gossip",
         "kernel": "jump:2", "exchange": "single-hop", "torus": true,
         "seed": 5, "max_steps": 99}|}
  in
  match c.Compile.cells with
  | [ cell ] ->
      let cfg = Ast.cell_config cell ~seed:c.Compile.seed ~trial:3 in
      let s = Mobile_network.Config.to_string cfg in
      List.iter
        (fun needle ->
          let contains =
            let nl = String.length needle and hl = String.length s in
            let rec go i =
              i + nl <= hl && (String.equal (String.sub s i nl) needle || go (i + 1))
            in
            go 0
          in
          Alcotest.(check bool) (needle ^ " in " ^ s) true contains)
        [ "side=16"; "k=8"; "r=1"; "gossip"; "seed=5"; "trial=3" ]
  | cells -> Alcotest.failf "expected one cell, got %d" (List.length cells)

(* ---- golden diagnostics ------------------------------------------------- *)

let check_diags name text expected =
  Alcotest.(check (list string)) name expected (errors_of ~filename:"sc.json" text)

let test_diag_parse_error () =
  check_diags "JSON syntax error carries position" "{\n  \"side\": 16,,\n}"
    [ "sc.json:2:14: scenario: JSON parse error: expected \", found ," ]

let test_diag_unknown_field () =
  check_diags "unknown field at its key" "{\n  \"sidee\": 16\n}"
    [
      "sc.json:2:3: scenario: unknown field \"sidee\" (expected one of: name, \
       space, side, agents, radius, protocol, kernel, exchange, torus, seed, \
       trials, max_steps, faults)";
    ]

let test_diag_collects_all () =
  let errs =
    errors_of ~filename:"sc.json"
      "{\n\
      \  \"side\": \"wide\",\n\
      \  \"protocol\": \"gossipp\",\n\
      \  \"trials\": 0\n\
       }"
  in
  Alcotest.(check int) "three independent diagnostics" 3 (List.length errs);
  Alcotest.(check string) "first is the side type error"
    "sc.json:2:11: scenario: side must be an integer" (List.nth errs 0);
  Alcotest.(check string) "second is the protocol spelling"
    "sc.json:3:15: scenario: unknown protocol \"gossipp\" (expected broadcast, \
     gossip, frog, broadcast-cover, cover-walks or predator-prey:<preys>)"
    (List.nth errs 1)

let test_diag_semantic_position () =
  check_diags "semantic check anchored at the field value"
    "{\n  \"trials\": 0\n}"
    [ "sc.json:2:13: scenario: trials must be >= 1" ]

let test_diag_faults_position () =
  check_diags "fault-plan diagnostics keep file positions"
    "{\n  \"faults\": {\n    \"loss_p\": 2.0\n  }\n}"
    [ "sc.json:3:15: loss_p must lie in [0, 1]" ]

let test_diag_non_grid () =
  let errs =
    errors_of ~filename:"sc.json"
      "{\n  \"space\": \"continuum\",\n  \"protocol\": \"gossip\"\n}"
  in
  Alcotest.(check int) "one diagnostic" 1 (List.length errs);
  Alcotest.(check string) "grid-only protocol flagged at its value"
    "sc.json:3:15: scenario: protocol is grid-only: --space continuum runs a \
     plain broadcast (as on the CLI)"
    (List.nth errs 0)

let test_diag_no_filename () =
  match Compile.compile "{\"trials\": 0}" with
  | Ok _ -> Alcotest.fail "expected a diagnostic"
  | Error [ e ] ->
      Alcotest.(check string) "position without filename prefix"
        "1:12: scenario: trials must be >= 1" e
  | Error errs -> Alcotest.failf "expected one diagnostic, got %d" (List.length errs)

let qtest t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "scenario"
    [
      ( "properties",
        [
          qtest prop_roundtrip;
          qtest prop_hash_spelling_invariant;
          qtest prop_hash_semantic_sensitive;
          qtest prop_cells_product;
          qtest prop_cell_hash_ignores_seed_trials;
        ] );
      ( "compile",
        [
          Alcotest.test_case "minimal file" `Quick test_minimal_file;
          Alcotest.test_case "scalar = singleton axis" `Quick
            test_scalar_equals_singleton;
          Alcotest.test_case "desugared engine config" `Quick
            test_desugared_config;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "parse error" `Quick test_diag_parse_error;
          Alcotest.test_case "unknown field" `Quick test_diag_unknown_field;
          Alcotest.test_case "collects all" `Quick test_diag_collects_all;
          Alcotest.test_case "semantic position" `Quick
            test_diag_semantic_position;
          Alcotest.test_case "fault-plan position" `Quick
            test_diag_faults_position;
          Alcotest.test_case "non-grid fields" `Quick test_diag_non_grid;
          Alcotest.test_case "no filename" `Quick test_diag_no_filename;
        ] );
    ]
