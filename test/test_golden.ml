(* Golden regression tests: exact deterministic outputs pinned from a
   known-good build. Every simulator in the repo is deterministic given
   (seed, trial), so any accidental change to the PRNG, to the engine's
   evaluation order, or to a kernel's probabilities shows up here as an
   exact mismatch — long before it would bend an experiment's statistics.

   If a change is *intentional* (e.g. a new PRNG constant), re-pin these
   values and say so in the commit; the experiment suite revalidates the
   physics independently. *)

module Config = Mobile_network.Config
module Protocol = Mobile_network.Protocol
module Simulation = Mobile_network.Simulation

let steps ?(torus = false) ?(radius = 0) ?(protocol = Protocol.Broadcast)
    ?(exchange = Config.Flood_component) ~side ~agents ~seed () =
  (Simulation.run_config
     (Config.make ~torus ~radius ~protocol ~exchange ~side ~agents ~seed ()))
    .Simulation.steps

let test_prng_stream () =
  let rng = Prng.of_seed 42 in
  Alcotest.(check int64) "draw 1" 1546998764402558742L (Prng.bits64 rng);
  Alcotest.(check int64) "draw 2" 6990951692964543102L (Prng.bits64 rng);
  Alcotest.(check int64) "draw 3" (-5902157311460992607L) (Prng.bits64 rng);
  let child = Prng.split (Prng.of_seed 42) in
  Alcotest.(check int64) "split child draw" 832859759179319558L
    (Prng.bits64 child)

let test_walk_endpoint () =
  let g = Grid.create ~side:32 () in
  Alcotest.(check int) "lazy walk endpoint after 500 steps" 417
    (Walk.advance g Walk.Lazy_one_fifth (Prng.of_seed 9) (Grid.center g)
       ~steps:500)

let test_engine_completion_times () =
  Alcotest.(check int) "broadcast" 612 (steps ~side:16 ~agents:6 ~seed:0 ());
  Alcotest.(check int) "broadcast r=2" 358
    (steps ~side:24 ~agents:12 ~radius:2 ~seed:3 ());
  Alcotest.(check int) "gossip" 245
    (steps ~side:12 ~agents:5 ~protocol:Protocol.Gossip ~seed:1 ());
  Alcotest.(check int) "frog" 625
    (steps ~side:12 ~agents:6 ~protocol:Protocol.Frog ~seed:2 ());
  Alcotest.(check int) "cover walks" 559
    (steps ~side:10 ~agents:4 ~protocol:Protocol.Cover_walks ~seed:0 ());
  Alcotest.(check int) "predator-prey" 252
    (steps ~side:10 ~agents:4
       ~protocol:(Protocol.Predator_prey { preys = 6 })
       ~seed:5 ());
  Alcotest.(check int) "torus" 157 (steps ~torus:true ~side:16 ~agents:6 ~seed:0 ());
  (* single-hop equals flooding here: below percolation the components
     are so small that one hop covers them (the A1 phenomenon) *)
  Alcotest.(check int) "single-hop" 612
    (steps ~side:16 ~agents:6 ~seed:0 ~exchange:Config.Single_hop ())

let test_satellite_simulators () =
  let d = Barriers.Domain.central_wall (Grid.create ~side:16 ()) ~gap:2 in
  let br =
    Barriers.Barrier_sim.broadcast
      { Barriers.Barrier_sim.domain = d; agents = 8; radius = 0;
        los_blocking = false; seed = 0; trial = 0; max_steps = 1_000_000 }
  in
  Alcotest.(check int) "barrier broadcast" 1300 br.Barriers.Barrier_sim.steps;
  let cr =
    Continuum.broadcast
      { Continuum.box_side = 8.; agents = 32; radius = 0.5; sigma = 0.2;
        seed = 0; trial = 0; max_steps = 1_000_000 }
  in
  Alcotest.(check int) "continuum broadcast" 274 cr.Continuum.steps;
  let cl =
    Baselines.Clementi.broadcast
      { Baselines.Clementi.side = 16; agents = 64; big_r = 2; rho = 2;
        seed = 0; trial = 0; max_steps = 100_000 }
  in
  Alcotest.(check int) "clementi broadcast" 15 cl.Baselines.Clementi.steps

(* The fault adversary draws from its own subsystem streams, so these
   pins also freeze the split_stream derivation: a change to the
   subsystem salt or stream layout shows up here, not just in lib/prng's
   unit tests. The shared scenario is side 16, k = 6, r = 1, seed 0,
   whose fault-free completion is 596 steps. *)
let test_fault_injection () =
  let module Plan = Faults.Plan in
  let fsteps ?max_steps ?source plan =
    (Simulation.run_config
       (Config.make ~side:16 ~agents:6 ~radius:1 ~seed:0 ?max_steps ?source
          ~faults:plan ()))
      .Simulation.steps
  in
  Alcotest.(check int) "empty plan = pristine run" 596 (fsteps Plan.empty);
  Alcotest.(check int) "loss 0.9" 1734
    (fsteps { Plan.empty with Plan.loss_p = 0.9 });
  Alcotest.(check int) "duty 7/8 outage" 655
    (fsteps { Plan.empty with Plan.duty = Some (7, 8) });
  Alcotest.(check int) "churn 0.05/0.5" 663
    (fsteps
       { Plan.empty with
         Plan.churn = Some { Plan.leave_p = 0.05; return_p = 0.5 } });
  Alcotest.(check int) "combined plan" 562
    (fsteps
       { Plan.loss_p = 0.25; duty = Some (2, 10);
         windows = [ { Plan.w_from = 10; w_until = 30; w_agent = Some 1 } ];
         churn = Some { Plan.leave_p = 0.02; return_p = 0.4 };
         silent = []; deaf = [] });
  (* a silent agent holds the rumor without retransmitting; the others
     still complete the broadcast around it *)
  Alcotest.(check int) "silent bystander" 218
    (fsteps ~source:0 { Plan.empty with Plan.silent = [ 3 ] })

let () =
  Alcotest.run "golden"
    [
      ( "golden",
        [
          Alcotest.test_case "prng stream" `Quick test_prng_stream;
          Alcotest.test_case "walk endpoint" `Quick test_walk_endpoint;
          Alcotest.test_case "engine completion times" `Quick
            test_engine_completion_times;
          Alcotest.test_case "satellite simulators" `Quick
            test_satellite_simulators;
          Alcotest.test_case "fault injection" `Quick test_fault_injection;
        ] );
    ]
