(* Tests for the deterministic domain-pool scheduler (Runtime.Pool).

   The load-bearing property is observable determinism: for any pool
   size, map/init/map_reduce return exactly what the sequential code
   returns, in submission order, and the production fan-out points
   (Sweep trial replication, Registry.run_all) are byte-identical at
   jobs = 1 and jobs = 4. *)

module Pool = Runtime.Pool
module Registry = Experiments.Registry
module Exp_result = Experiments.Exp_result
module Sweep = Experiments.Sweep
module Config = Mobile_network.Config

let with_ambient_jobs jobs fn =
  Fun.protect
    ~finally:(fun () -> Pool.set_ambient_jobs 1)
    (fun () ->
      Pool.set_ambient_jobs jobs;
      fn ())

(* --- pure pool semantics --- *)

let test_map_matches_list_map () =
  let items = List.init 37 (fun i -> (i * 13) + 1) in
  let f i x = (i * 1000) + (x * x) in
  let expect = List.mapi f items in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          Alcotest.(check (list int))
            (Printf.sprintf "jobs=%d equals List.mapi" jobs)
            expect
            (Pool.map pool ~f items)))
    [ 1; 2; 4; 7; 64 (* more workers than items *) ]

let test_edge_cases () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          Alcotest.(check (list int))
            (Printf.sprintf "jobs=%d empty list" jobs)
            []
            (Pool.map pool ~f:(fun _ x -> x) []);
          Alcotest.(check (list int))
            (Printf.sprintf "jobs=%d single item" jobs)
            [ 42 ]
            (Pool.map pool ~f:(fun i x -> x + i) [ 42 ]);
          Alcotest.(check (array int))
            (Printf.sprintf "jobs=%d init n=0" jobs)
            [||]
            (Pool.init pool ~n:0 ~f:(fun i -> i))))
    [ 1; 4 ];
  Alcotest.check_raises "jobs=0 rejected"
    (Invalid_argument "Pool.create: jobs < 1") (fun () ->
      ignore (Pool.create ~jobs:0))

let test_init_matches_array_init () =
  let f i = (i * i) + 3 in
  let expect = Array.init 100 f in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          Alcotest.(check (array int))
            (Printf.sprintf "jobs=%d equals Array.init" jobs)
            expect
            (Pool.init pool ~n:100 ~f)))
    [ 1; 3; 5 ]

let test_map_reduce_in_order () =
  (* a non-commutative reduce detects any ordering violation *)
  let items = List.init 23 (fun i -> i * 7) in
  let map i x = Printf.sprintf "%d:%d;" i x in
  let reduce acc s = acc ^ s in
  let expect = List.fold_left reduce "" (List.mapi map items) in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          Alcotest.(check string)
            (Printf.sprintf "jobs=%d in-order fold" jobs)
            expect
            (Pool.map_reduce pool ~map ~reduce ~init:"" items)))
    [ 1; 4 ]

let test_on_result_submission_order () =
  let n = 25 in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let fired = ref [] in
          let results =
            Pool.map pool
              ~on_result:(fun i r -> fired := (i, r) :: !fired)
              ~f:(fun i x -> x - i)
              (List.init n (fun i -> i * 2))
          in
          Alcotest.(check (list (pair int int)))
            (Printf.sprintf "jobs=%d on_result in submission order" jobs)
            (List.mapi (fun i r -> (i, r)) results)
            (List.rev !fired)))
    [ 1; 4 ]

let test_on_progress_counts () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let events = ref 0 in
      let max_done = ref 0 in
      ignore
        (Pool.map pool
           ~on_progress:(fun ~done_ ~total ~job:_ ->
             incr events;
             Alcotest.(check int) "total" 16 total;
             max_done := max !max_done done_)
           ~f:(fun i _ -> i)
           (List.init 16 (fun i -> i)));
      Alcotest.(check int) "one event per job" 16 !events;
      Alcotest.(check int) "done_ reaches total" 16 !max_done)

exception Boom of int

let test_exception_propagation () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let raised =
            try
              ignore
                (Pool.map pool
                   ~f:(fun i _ -> if i mod 7 = 3 then raise (Boom i) else i)
                   (List.init 20 (fun i -> i)));
              None
            with Boom i -> Some i
          in
          (* lowest failing index (3, 10, 17 all fail) wins, matching
             what the sequential run raises first *)
          Alcotest.(check (option int))
            (Printf.sprintf "jobs=%d lowest-index exception" jobs)
            (Some 3) raised;
          (* the pool must survive a failed fan-out *)
          Alcotest.(check (list int))
            (Printf.sprintf "jobs=%d pool usable after exception" jobs)
            [ 0; 2; 4 ]
            (Pool.map pool ~f:(fun _ x -> 2 * x) [ 0; 1; 2 ])))
    [ 1; 4 ]

let test_nested_fanout_no_deadlock () =
  (* Every outer job fans out again on the same pool; with fewer
     workers than outer jobs this deadlocks unless nested calls help
     run queued work instead of blocking. *)
  Pool.with_pool ~jobs:2 (fun pool ->
      let outer =
        Pool.map pool
          ~f:(fun i _ ->
            Array.to_list
              (Pool.init pool ~n:8 ~f:(fun j -> (i * 100) + j)))
          (List.init 6 (fun i -> i))
      in
      Alcotest.(check (list (list int)))
        "nested results in order"
        (List.init 6 (fun i -> List.init 8 (fun j -> (i * 100) + j)))
        outer)

let test_ambient_pool () =
  with_ambient_jobs 3 (fun () ->
      Alcotest.(check int) "ambient_jobs" 3 (Pool.ambient_jobs ());
      Alcotest.(check int) "ambient pool size" 3 (Pool.jobs (Pool.ambient ())));
  Alcotest.(check int) "ambient restored" 1 (Pool.ambient_jobs ())

(* --- production fan-out points --- *)

let measure_sweep () =
  let m =
    Sweep.completion_times ~trials:12 ~cfg:(fun ~trial ->
        Config.make ~side:16 ~agents:6 ~radius:0 ~seed:5 ~trial ())
  in
  (Array.to_list m.Sweep.times, m.Sweep.timeouts)

let test_sweep_identical_across_jobs () =
  let seq = with_ambient_jobs 1 measure_sweep in
  let par = with_ambient_jobs 4 measure_sweep in
  Alcotest.(check (pair (list (float 0.)) int))
    "completion_times identical at jobs=1 and jobs=4" seq par;
  let prob () =
    Sweep.probability ~trials:40 ~f:(fun ~trial -> trial mod 3 = 0)
  in
  Alcotest.(check (float 0.))
    "probability identical at jobs=1 and jobs=4"
    (with_ambient_jobs 1 prob) (with_ambient_jobs 4 prob)

let render_registry () =
  let buf = Buffer.create (1 lsl 16) in
  let fmt = Format.formatter_of_buffer buf in
  let results = Registry.run_all ~quick:true ~seed:0 fmt () in
  Format.pp_print_flush fmt ();
  (Buffer.contents buf, List.map Exp_result.to_csv results)

let test_run_all_identical_across_jobs () =
  (* the full production path of `mobisim exp --jobs N`: experiments fan
     out over the ambient pool and their sweeps nest on the same pool *)
  let rendered_seq, csv_seq = with_ambient_jobs 1 render_registry in
  let rendered_par, csv_par = with_ambient_jobs 4 render_registry in
  Alcotest.(check (list string))
    "per-experiment CSV identical at jobs=1 and jobs=4" csv_seq csv_par;
  Alcotest.(check string)
    "rendered run_all output byte-identical at jobs=1 and jobs=4"
    rendered_seq rendered_par

let () =
  Alcotest.run "runtime"
    [
      ( "pool",
        [
          Alcotest.test_case "map matches List.mapi" `Quick
            test_map_matches_list_map;
          Alcotest.test_case "edge cases" `Quick test_edge_cases;
          Alcotest.test_case "init matches Array.init" `Quick
            test_init_matches_array_init;
          Alcotest.test_case "map_reduce folds in order" `Quick
            test_map_reduce_in_order;
          Alcotest.test_case "on_result fires in submission order" `Quick
            test_on_result_submission_order;
          Alcotest.test_case "on_progress fires once per job" `Quick
            test_on_progress_counts;
          Alcotest.test_case "first exception propagates after drain" `Quick
            test_exception_propagation;
          Alcotest.test_case "nested fan-out helps instead of deadlocking"
            `Quick test_nested_fanout_no_deadlock;
          Alcotest.test_case "ambient pool" `Quick test_ambient_pool;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "sweep trials identical across jobs" `Quick
            test_sweep_identical_across_jobs;
          Alcotest.test_case "registry run_all identical across jobs" `Slow
            test_run_all_identical_across_jobs;
        ] );
    ]
