(* Tests for the Rumor_set bitset. *)

module R = Mobile_network.Rumor_set

let test_create_empty () =
  let s = R.create ~capacity:10 in
  Alcotest.(check int) "capacity" 10 (R.capacity s);
  Alcotest.(check int) "cardinal" 0 (R.cardinal s);
  Alcotest.(check bool) "not full" false (R.is_full s);
  for i = 0 to 9 do
    Alcotest.(check bool) "no members" false (R.mem s i)
  done;
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Rumor_set.create: negative capacity") (fun () ->
      ignore (R.create ~capacity:(-1)))

let test_zero_capacity () =
  let s = R.create ~capacity:0 in
  Alcotest.(check bool) "empty set of nothing is full" true (R.is_full s);
  Alcotest.(check int) "cardinal" 0 (R.cardinal s)

let test_add_and_mem () =
  let s = R.create ~capacity:20 in
  Alcotest.(check int) "first add returns 1" 1 (R.add s 7);
  Alcotest.(check int) "repeat add returns 0" 0 (R.add s 7);
  Alcotest.(check bool) "member" true (R.mem s 7);
  Alcotest.(check bool) "non-member" false (R.mem s 8);
  Alcotest.(check int) "cardinal tracks" 1 (R.cardinal s);
  Alcotest.check_raises "out of range" (Invalid_argument "Rumor_set: id out of range")
    (fun () -> ignore (R.add s 20));
  Alcotest.check_raises "negative" (Invalid_argument "Rumor_set: id out of range")
    (fun () -> ignore (R.mem s (-1)))

let test_singleton () =
  let s = R.singleton ~capacity:5 3 in
  Alcotest.(check int) "cardinal" 1 (R.cardinal s);
  Alcotest.(check bool) "member" true (R.mem s 3)

let test_full () =
  let s = R.create ~capacity:9 in
  for i = 0 to 8 do
    ignore (R.add s i)
  done;
  Alcotest.(check bool) "full" true (R.is_full s);
  Alcotest.(check int) "cardinal" 9 (R.cardinal s)

let test_union_into () =
  let a = R.create ~capacity:16 and b = R.create ~capacity:16 in
  List.iter (fun i -> ignore (R.add a i)) [ 0; 3; 9; 15 ];
  List.iter (fun i -> ignore (R.add b i)) [ 3; 4; 15 ];
  let added = R.union_into ~src:a ~dst:b in
  Alcotest.(check int) "two new rumors" 2 added;
  Alcotest.(check int) "b cardinal" 5 (R.cardinal b);
  List.iter
    (fun i -> Alcotest.(check bool) "b has all" true (R.mem b i))
    [ 0; 3; 4; 9; 15 ];
  (* src unchanged *)
  Alcotest.(check int) "a unchanged" 4 (R.cardinal a);
  Alcotest.(check bool) "a lacks 4" false (R.mem a 4);
  (* idempotent *)
  Alcotest.(check int) "repeat union adds nothing" 0
    (R.union_into ~src:a ~dst:b)

let test_union_capacity_mismatch () =
  let a = R.create ~capacity:8 and b = R.create ~capacity:9 in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Rumor_set.union_into: capacity mismatch") (fun () ->
      ignore (R.union_into ~src:a ~dst:b))

let test_copy_independent () =
  let a = R.singleton ~capacity:4 1 in
  let b = R.copy a in
  ignore (R.add b 2);
  Alcotest.(check int) "copy gained" 2 (R.cardinal b);
  Alcotest.(check int) "original untouched" 1 (R.cardinal a);
  Alcotest.(check bool) "equality after copy diverges" false (R.equal a b)

let test_equal () =
  let a = R.create ~capacity:12 and b = R.create ~capacity:12 in
  Alcotest.(check bool) "both empty" true (R.equal a b);
  ignore (R.add a 5);
  Alcotest.(check bool) "differ" false (R.equal a b);
  ignore (R.add b 5);
  Alcotest.(check bool) "equal again" true (R.equal a b);
  let c = R.create ~capacity:13 in
  Alcotest.(check bool) "capacity mismatch unequal" false (R.equal a c)

let test_iter_order () =
  let s = R.create ~capacity:30 in
  List.iter (fun i -> ignore (R.add s i)) [ 17; 2; 29; 0 ];
  let seen = ref [] in
  R.iter s ~f:(fun i -> seen := i :: !seen);
  Alcotest.(check (list int)) "increasing order" [ 0; 2; 17; 29 ]
    (List.rev !seen)

(* --- qcheck: bitset behaves like a reference implementation (int sets) --- *)

let ops_gen capacity = Qgen.rumor_ids capacity

let prop_matches_reference =
  let capacity = 37 in
  QCheck.Test.make ~name:"add/mem/cardinal match a reference set" ~count:300
    (ops_gen capacity) (fun adds ->
      let s = R.create ~capacity in
      let reference = Hashtbl.create 32 in
      List.iter
        (fun i ->
          let fresh = not (Hashtbl.mem reference i) in
          Hashtbl.replace reference i ();
          let added = R.add s i in
          assert ((added = 1) = fresh))
        adds;
      R.cardinal s = Hashtbl.length reference
      && List.for_all (fun i -> R.mem s i) adds)

let prop_union_cardinal =
  let capacity = 41 in
  QCheck.Test.make ~name:"union cardinal = |a U b|" ~count:300
    QCheck.(pair (ops_gen capacity) (ops_gen capacity))
    (fun (xs, ys) ->
      let a = R.create ~capacity and b = R.create ~capacity in
      List.iter (fun i -> ignore (R.add a i)) xs;
      List.iter (fun i -> ignore (R.add b i)) ys;
      ignore (R.union_into ~src:a ~dst:b);
      let expected = List.sort_uniq compare (xs @ ys) in
      R.cardinal b = List.length expected
      && List.for_all (fun i -> R.mem b i) expected)

let prop_union_into_is_set_union =
  let capacity = 41 in
  QCheck.Test.make
    ~name:"union_into behaves as the functional set union" ~count:300
    QCheck.(pair (ops_gen capacity) (ops_gen capacity))
    (fun (xs, ys) ->
      let a = R.create ~capacity and b = R.create ~capacity in
      List.iter (fun i -> ignore (R.add a i)) xs;
      List.iter (fun i -> ignore (R.add b i)) ys;
      let before_a = R.cardinal a in
      let added = R.union_into ~src:a ~dst:b in
      let union = List.sort_uniq compare (xs @ ys) in
      (* dst is exactly a U b, membership-for-membership ... *)
      List.for_all (fun i -> R.mem b i = List.mem i union)
        (List.init capacity (fun i -> i))
      (* ... the return value counts the fresh rumors ... *)
      && added = R.cardinal b - List.length (List.sort_uniq compare ys)
      (* ... and src is untouched *)
      && R.cardinal a = before_a
      && List.for_all (fun i -> R.mem a i) xs)

let () =
  Alcotest.run "rumor_set"
    [
      ( "basics",
        [
          Alcotest.test_case "create" `Quick test_create_empty;
          Alcotest.test_case "zero capacity" `Quick test_zero_capacity;
          Alcotest.test_case "add and mem" `Quick test_add_and_mem;
          Alcotest.test_case "singleton" `Quick test_singleton;
          Alcotest.test_case "full set" `Quick test_full;
        ] );
      ( "unions",
        [
          Alcotest.test_case "union_into" `Quick test_union_into;
          Alcotest.test_case "capacity mismatch" `Quick
            test_union_capacity_mismatch;
          Alcotest.test_case "copy independent" `Quick test_copy_independent;
          Alcotest.test_case "equal" `Quick test_equal;
          Alcotest.test_case "iter in order" `Quick test_iter_order;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_matches_reference; prop_union_cardinal;
            prop_union_into_is_set_union;
          ] );
    ]
