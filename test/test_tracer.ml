(* Tests for Obs.Tracer and its integration with the engine, the domain
   pool and the experiment harness.

   The load-bearing properties:
   - the export is deterministic: fixed timestamps in, byte-identical
     Chrome trace-event JSON out (golden);
   - rings are bounded: overflow counts into [dropped], never grows
     memory, and surfaces as a [tracer.dropped] instant in the export;
   - tracing costs nothing when off: the null tracer allocates zero
     minor words on the emit path (and a recording ring allocates zero
     per emit too — four int stores);
   - tracing is pure observation: experiment output is byte-identical
     with tracing on or off, at jobs = 1 and jobs = 2;
   - a real traced run exports a file the validator accepts, carrying
     all three instrumented layers (engine phases, pool lifecycle, GC
     instants);
   - the validator rejects structurally broken documents. *)

module Tracer = Obs.Tracer
module Json = Obs.Json
module Pool = Runtime.Pool
module Exp = Experiments.Registry
module Exp_result = Experiments.Exp_result

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

(* --- golden export --- *)

(* Emit one event of each kind at fixed timestamps (ns multiples of 500,
   so the rebased microsecond floats print exactly) and compare the
   whole export byte-for-byte. Pins the merge order, the ts rebase, the
   thread_name metadata and every field's spelling. *)
let test_golden_export () =
  let tr = Tracer.create ~capacity:8 () in
  let phase = Tracer.name tr "sim.phase.move" in
  let mark = Tracer.name tr "mark" in
  let informed = Tracer.name tr "sim.informed" in
  Tracer.duration tr phase ~ts:1_000 ~dur:500;
  Tracer.instant tr mark ~ts:1_500;
  Tracer.counter tr informed ~ts:2_000 ~v:42;
  Tracer.duration_v tr phase ~ts:2_500 ~dur:1_000 ~v:7;
  let tid = (Domain.self () :> int) in
  let expected =
    Printf.sprintf
      {|[
{"name":"thread_name","ph":"M","ts":0.0,"pid":1,"tid":%d,"args":{"name":"domain%d"}},
{"name":"sim.phase.move","ph":"X","ts":0.0,"pid":1,"tid":%d,"dur":0.5},
{"name":"mark","ph":"i","ts":0.5,"pid":1,"tid":%d,"s":"t"},
{"name":"sim.informed","ph":"C","ts":1.0,"pid":1,"tid":%d,"args":{"value":42}},
{"name":"sim.phase.move","ph":"X","ts":1.5,"pid":1,"tid":%d,"dur":1.0,"args":{"v":7}}
]
|}
      tid tid tid tid tid tid
  in
  Alcotest.(check string) "golden export" expected (Tracer.export_string tr);
  (match Tracer.parse (Tracer.export_string tr) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "golden export fails own validator: %s" e);
  Alcotest.(check int) "event count" 4 (Tracer.events tr);
  Alcotest.(check int) "nothing dropped" 0 (Tracer.dropped tr)

let test_empty_export () =
  let tr = Tracer.create () in
  Alcotest.(check string) "empty export" "[]\n" (Tracer.export_string tr);
  Alcotest.(check string) "null export" "[]\n" (Tracer.export_string Tracer.null)

(* --- bounded rings --- *)

let test_ring_overflow () =
  let tr = Tracer.create ~capacity:4 () in
  let mark = Tracer.name tr "mark" in
  for i = 1 to 10 do
    Tracer.instant_v tr mark ~ts:(i * 1_000) ~v:i
  done;
  Alcotest.(check int) "ring holds capacity" 4 (Tracer.events tr);
  Alcotest.(check int) "overflow counted" 6 (Tracer.dropped tr);
  (* keep-first: the surviving events are the earliest four *)
  let s = Tracer.export_string tr in
  let has sub = contains s sub in
  Alcotest.(check bool) "first event kept" true (has {|{"v":1}|});
  Alcotest.(check bool) "fifth event dropped" false (has {|{"v":5}|});
  Alcotest.(check bool) "dropped instant exported" true
    (has {|"name":"tracer.dropped"|} && has {|{"v":6}|})

(* --- the emit path allocates nothing --- *)

let measure_minor f =
  (* warm up: DLS ring registration and any lazy setup happen outside
     the measurement *)
  for _ = 1 to 100 do
    f 0
  done;
  let before = (Gc.quick_stat ()).Gc.minor_words in
  for i = 1 to 10_000 do
    f i
  done;
  let after = (Gc.quick_stat ()).Gc.minor_words in
  after -. before

let test_null_tracer_no_alloc () =
  let n = Tracer.name Tracer.null "x" in
  let g = Tracer.gc_track Tracer.null in
  let emitted =
    measure_minor (fun i ->
        Tracer.duration Tracer.null n ~ts:i ~dur:1;
        Tracer.instant Tracer.null n ~ts:i;
        Tracer.counter Tracer.null n ~ts:i ~v:i;
        Tracer.gc_sample Tracer.null g)
  in
  Alcotest.(check (float 0.0))
    "no minor allocation across 10k null emits" 0.0 emitted

let test_recording_emit_no_alloc () =
  (* the recording path is four int stores into a pre-sized ring; once
     the ring is registered (warm-up) emitting allocates nothing, full
     or not *)
  let tr = Tracer.create ~capacity:64 () in
  let n = Tracer.name tr "x" in
  let emitted = measure_minor (fun i -> Tracer.duration tr n ~ts:i ~dur:1) in
  Alcotest.(check (float 0.0))
    "no minor allocation across 10k recording emits" 0.0 emitted

(* --- integration: tracing is pure observation --- *)

let with_ambient_jobs jobs fn =
  Fun.protect
    ~finally:(fun () -> Pool.set_ambient_jobs 1)
    (fun () ->
      Pool.set_ambient_jobs jobs;
      fn ())

let with_ambient_tracer tr fn =
  Fun.protect
    ~finally:(fun () ->
      Tracer.set_ambient Tracer.null;
      Pool.set_ambient_tracer Tracer.null)
    (fun () ->
      Tracer.set_ambient tr;
      Pool.set_ambient_tracer tr;
      fn ())

let render_e1 () =
  let entry =
    match Exp.find "E1" with
    | Some e -> e
    | None -> Alcotest.fail "E1 missing from registry"
  in
  let buf = Buffer.create (1 lsl 12) in
  let results =
    Exp.run_entries ~quick:true ~seed:0
      ~on_result:(fun r -> Buffer.add_string buf (Exp_result.to_csv r))
      [ entry ]
  in
  (Buffer.contents buf, List.map Exp_result.to_csv results)

let test_byte_identical_with_tracing () =
  let baseline, baseline_csv = with_ambient_jobs 1 render_e1 in
  List.iter
    (fun jobs ->
      let tr = Tracer.create () in
      let rendered, csv =
        with_ambient_tracer tr (fun () -> with_ambient_jobs jobs render_e1)
      in
      Alcotest.(check (list string))
        (Printf.sprintf "CSV identical, tracing on, jobs=%d" jobs)
        baseline_csv csv;
      Alcotest.(check string)
        (Printf.sprintf "rendered output identical, tracing on, jobs=%d" jobs)
        baseline rendered;
      (* and the timeline was live, not dead weight *)
      Alcotest.(check bool)
        (Printf.sprintf "events recorded, jobs=%d" jobs)
        true
        (Tracer.events tr > 0))
    [ 1; 2 ]

let test_real_run_exports_all_layers () =
  let tr = Tracer.create () in
  ignore (with_ambient_tracer tr (fun () -> with_ambient_jobs 2 render_e1));
  let s = Tracer.export_string tr in
  (match Tracer.parse s with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "real export fails validator: %s" e);
  let has sub = contains s sub in
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (Printf.sprintf "export contains %s" name)
        true
        (has (Printf.sprintf {|"name":"%s"|} name)))
    [
      "sim.phase.move"; "sim.phase.exchange"; "sim.run"; "pool.submit";
      "pool.dequeue"; "pool.task"; "thread_name";
    ]

(* --- validator rejections --- *)

let check_invalid label text =
  match Tracer.parse text with
  | Ok _ -> Alcotest.failf "%s: validator accepted invalid input" label
  | Error _ -> ()

let test_validator_rejects () =
  check_invalid "not an array" {|{"name":"x"}|};
  check_invalid "not json" "nonsense";
  check_invalid "element not an object" {|[1]|};
  check_invalid "missing name" {|[{"ph":"i","ts":0.0,"pid":1,"tid":0}]|};
  check_invalid "missing ph" {|[{"name":"x","ts":0.0,"pid":1,"tid":0}]|};
  check_invalid "non-numeric ts"
    {|[{"name":"x","ph":"i","ts":"0","pid":1,"tid":0}]|};
  check_invalid "non-integer tid"
    {|[{"name":"x","ph":"i","ts":0.0,"pid":1,"tid":0.5}]|};
  check_invalid "negative dur"
    {|[{"name":"x","ph":"X","ts":0.0,"pid":1,"tid":0,"dur":-1.0}]|};
  check_invalid "X without dur" {|[{"name":"x","ph":"X","ts":0.0,"pid":1,"tid":0}]|};
  check_invalid "ts not monotone per tid"
    {|[{"name":"x","ph":"i","ts":5.0,"pid":1,"tid":0},
       {"name":"x","ph":"i","ts":1.0,"pid":1,"tid":0}]|};
  (* interleaved tids are fine as long as each tid is monotone *)
  match
    Tracer.parse
      {|[{"name":"x","ph":"i","ts":5.0,"pid":1,"tid":0},
         {"name":"x","ph":"i","ts":1.0,"pid":1,"tid":1},
         {"name":"x","ph":"i","ts":6.0,"pid":1,"tid":0}]|}
  with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "per-tid monotone input rejected: %s" e

let () =
  Alcotest.run "tracer"
    [
      ( "export",
        [
          Alcotest.test_case "golden" `Quick test_golden_export;
          Alcotest.test_case "empty" `Quick test_empty_export;
          Alcotest.test_case "ring overflow" `Quick test_ring_overflow;
        ] );
      ( "cost",
        [
          Alcotest.test_case "null tracer no-alloc" `Quick
            test_null_tracer_no_alloc;
          Alcotest.test_case "recording emit no-alloc" `Quick
            test_recording_emit_no_alloc;
        ] );
      ( "integration",
        [
          Alcotest.test_case "byte-identical with tracing" `Quick
            test_byte_identical_with_tracing;
          Alcotest.test_case "real run exports all layers" `Quick
            test_real_run_exports_all_layers;
        ] );
      ( "validation",
        [ Alcotest.test_case "rejects broken documents" `Quick
            test_validator_rejects ] );
    ]
