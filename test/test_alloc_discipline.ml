(* Dynamic cross-check of the static alloc-discipline pass: the lint
   proves the hot path is structurally allocation-free (modulo justified
   [@alloc_ok] sites); this test measures it. The headline perf_probe
   config must stay within a small minor-heap budget per step — if an
   unjustified allocation sneaks past the analyzer (e.g. through a
   functor boundary it cannot see), this trips even though mobilint
   stays green. *)

module Config = Mobile_network.Config
module Simulation = Mobile_network.Simulation

(* headline probe: "core broadcast side=64 k=64 r=0" (~2 words/step);
   the bound leaves the same slack bench-check applies (8 words/step)
   so a GC-timing wobble cannot flake the suite *)
let budget_words_per_step = 10.0

let run () =
  (Simulation.run_config
     (Config.make ~side:64 ~agents:64 ~radius:0 ~seed:7 ~max_steps:2000 ()))
    .Simulation.steps

let test_headline_budget () =
  ignore (run ());
  (* warmup: grow-once scratch, lazy tables *)
  let minor0 = Gc.minor_words () in
  let steps = ref 0 in
  for _ = 1 to 5 do
    steps := !steps + run ()
  done;
  let words = Gc.minor_words () -. minor0 in
  let per_step = words /. float_of_int (max 1 !steps) in
  if per_step > budget_words_per_step then
    Alcotest.failf
      "hot path allocates %.1f minor words/step (budget %.1f over %d steps)"
      per_step budget_words_per_step !steps

let () =
  Alcotest.run "alloc-discipline"
    [
      ( "dynamic",
        [
          Alcotest.test_case "headline probe stays in budget" `Quick
            test_headline_budget;
        ] );
    ]
