(* Tests for Obs.Series, the per-step timeseries recorder, and its
   engine integration.

   The load-bearing properties:
   - decimation keeps the row/step invariant: row i holds step
     i * stride, stride a power of two, bounded rows for any run length;
   - the export is golden-stable and self-validating (export -> parse
     round-trips through the documented schema);
   - the disabled path allocates nothing (same discipline as Span);
   - recording is pure observation: reports are identical with a
     recorder attached or not, and experiment output stays
     byte-identical at any jobs count with an ambient series dir set. *)

module Series = Obs.Series
module Json = Obs.Json
module Config = Mobile_network.Config
module Engine = Mobile_network.Engine
module Simulation = Mobile_network.Simulation

(* --- recorder semantics --------------------------------------------------- *)

let test_create_validation () =
  let invalid msg f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "create accepted %s" msg
  in
  invalid "capacity 1" (fun () -> Series.create ~capacity:1 ~columns:[ "x" ] ());
  invalid "empty columns" (fun () -> Series.create ~columns:[] ());
  invalid "duplicate column" (fun () ->
      Series.create ~columns:[ "x"; "x" ] ());
  invalid "reserved step column" (fun () ->
      Series.create ~columns:[ "step" ] ());
  Alcotest.(check bool) "null is disabled" false (Series.enabled Series.null);
  Alcotest.(check bool) "created recorder is enabled" true
    (Series.enabled (Series.create ~columns:[ "x" ] ()))

let test_decimation () =
  let t = Series.create ~capacity:4 ~columns:[ "x" ] () in
  let cx = Series.col t "x" in
  for step = 0 to 9 do
    if Series.want t ~step then begin
      Series.stage t cx (step * 10);
      Series.commit t ~step
    end
  done;
  (* capacity 4 over steps 0..9: two decimations leave stride 4 and the
     rows for steps 0, 4, 8 — row i always holds step i * stride *)
  Alcotest.(check int) "stride doubled twice" 4 (Series.stride t);
  Alcotest.(check int) "rows retained" 3 (Series.rows t);
  Alcotest.(check (array int))
    "step column" [| 0; 4; 8 |]
    (Series.column t "step");
  Alcotest.(check (array int))
    "data column survives decimation" [| 0; 40; 80 |]
    (Series.column t "x")

let test_want_gates_stride () =
  let t = Series.create ~capacity:4 ~columns:[ "x" ] () in
  let cx = Series.col t "x" in
  for step = 0 to 3 do
    Series.stage t cx step;
    Series.commit t ~step
  done;
  Alcotest.(check int) "stride after first decimation" 2 (Series.stride t);
  Alcotest.(check bool) "off-stride step not wanted" false
    (Series.want t ~step:5);
  Alcotest.(check bool) "on-stride step wanted" true (Series.want t ~step:6);
  Alcotest.(check bool) "null never wants" false
    (Series.want Series.null ~step:0)

(* --- export --------------------------------------------------------------- *)

let test_golden_export () =
  let t = Series.create ~capacity:4 ~columns:[ "a"; "b" ] () in
  let ca = Series.col t "a" and cb = Series.col t "b" in
  Series.stage t ca 1;
  Series.stage t cb 2;
  Series.commit t ~step:0;
  Series.stage t ca 3;
  Series.stage t cb 4;
  Series.commit t ~step:1;
  let expected =
    String.concat "\n"
      [
        "{\"schema\":\"mobisim-series/1\",\"columns\":[\"step\",\"a\",\"b\"],\
         \"stride\":1,\"rows\":2,\"meta\":{\"k\":\"v\"}}";
        "[0,1,2]";
        "[1,3,4]";
        "";
      ]
  in
  let exported = Series.export_string ~meta:[ ("k", Json.String "v") ] t in
  Alcotest.(check string) "golden NDJSON export" expected exported;
  (* self-validating: both renderings parse back through the validator *)
  (match Series.parse exported with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "export rejected by own parser: %s" e);
  match Series.parse (Json.to_string (Series.to_json t)) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "combined form rejected: %s" e

let test_validator_rejections () =
  let t = Series.create ~capacity:4 ~columns:[ "x" ] () in
  let cx = Series.col t "x" in
  Series.stage t cx 7;
  Series.commit t ~step:0;
  let doc = Series.to_json t in
  let rejects msg tweak =
    let j =
      match doc with
      | Json.Assoc members -> Json.Assoc (List.map tweak members)
      | _ -> Alcotest.fail "combined form is not an object"
    in
    match Series.validate j with
    | Ok () -> Alcotest.failf "validator accepted %s" msg
    | Error _ -> ()
  in
  (match Series.validate doc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "validator rejected a live recorder: %s" e);
  rejects "a wrong schema tag" (function
    | "schema", _ -> ("schema", Json.String "mobisim-series/0")
    | kv -> kv);
  rejects "a non-power-of-two stride" (function
    | "stride", _ -> ("stride", Json.Int 3)
    | kv -> kv);
  rejects "a row-count mismatch" (function
    | "rows", _ -> ("rows", Json.Int 5)
    | kv -> kv);
  rejects "an off-stride step" (function
    | "stride", _ -> ("stride", Json.Int 2)
    | "data", _ -> ("data", Json.List [ Json.List [ Json.Int 1; Json.Int 7 ] ])
    | kv -> kv);
  rejects "a short row" (function
    | "data", _ -> ("data", Json.List [ Json.List [ Json.Int 0 ] ])
    | kv -> kv)

(* --- the disabled path costs nothing -------------------------------------- *)

let test_null_no_alloc () =
  let cx = Series.col Series.null "anything" in
  let once step =
    if Series.want Series.null ~step then begin
      Series.stage Series.null cx step;
      Series.commit Series.null ~step
    end
  in
  for step = 1 to 100 do
    once step
  done;
  let before = (Gc.quick_stat ()).Gc.minor_words in
  for step = 1 to 10_000 do
    once step
  done;
  let after = (Gc.quick_stat ()).Gc.minor_words in
  Alcotest.(check (float 0.0))
    "no minor allocation across 10k disabled steps" 0.0 (after -. before)

(* --- engine integration --------------------------------------------------- *)

let cfg =
  Config.make ~side:16 ~agents:8 ~radius:2 ~seed:1 ~trial:0 ()

let test_engine_purity () =
  let plain = Simulation.run_config cfg in
  let sr = Series.create ~columns:Engine.series_columns () in
  let recorded = Simulation.run_config ~series:sr cfg in
  Alcotest.(check int) "steps unchanged" plain.Simulation.steps
    recorded.Simulation.steps;
  Alcotest.(check int) "informed unchanged" plain.Simulation.informed
    recorded.Simulation.informed;
  Alcotest.(check bool) "outcome unchanged" true
    (plain.Simulation.outcome = recorded.Simulation.outcome);
  (* the curve covers the whole run: step 0 state plus every step (the
     default capacity exceeds this run, so stride stays 1) *)
  Alcotest.(check int) "stride 1 for a short run" 1 (Series.stride sr);
  Alcotest.(check int) "one row per step plus the initial state"
    (plain.Simulation.steps + 1)
    (Series.rows sr);
  let informed = Series.column sr "informed" in
  (* row 0 records the post-placement time-0 state: the source plus any
     agents its initial exchange already reached *)
  Alcotest.(check bool) "initial informed includes the source" true
    (informed.(0) >= 1);
  Alcotest.(check int) "final informed row matches the report"
    plain.Simulation.informed
    informed.(Array.length informed - 1);
  (* the phase columns measured something on a timed run *)
  let move = Series.column sr "move_ns" in
  Alcotest.(check bool) "move phase was timed" true
    (Array.exists (fun ns -> ns > 0) move)

let test_engine_export_validates () =
  let sr = Series.create ~capacity:16 ~columns:Engine.series_columns () in
  let (_ : Simulation.report) = Simulation.run_config ~series:sr cfg in
  match Series.parse (Series.export_string sr) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "engine-recorded series invalid: %s" e

(* --- experiments stay byte-identical with an ambient series dir ------------ *)

let with_temp_dir fn =
  let dir = Filename.temp_file "mobisim_series" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command ("rm -rf " ^ Filename.quote dir)))
    (fun () -> fn dir)

let with_ambient_jobs jobs fn =
  Fun.protect
    ~finally:(fun () -> Runtime.Pool.set_ambient_jobs 1)
    (fun () ->
      Runtime.Pool.set_ambient_jobs jobs;
      fn ())

let with_ambient_series_dir dir fn =
  Fun.protect
    ~finally:(fun () -> Series.set_ambient_dir None)
    (fun () ->
      Series.set_ambient_dir (Some dir);
      fn ())

let render_e1 () =
  let entry =
    match Experiments.Registry.find "E1" with
    | Some e -> e
    | None -> Alcotest.fail "E1 missing from registry"
  in
  let buf = Buffer.create (1 lsl 12) in
  let (_ : Experiments.Exp_result.t list) =
    Experiments.Registry.run_entries ~quick:true ~seed:0
      ~on_result:(fun r ->
        Buffer.add_string buf (Experiments.Exp_result.to_csv r))
      [ entry ]
  in
  Buffer.contents buf

let series_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".series.json")
  |> List.sort compare

let test_e1_byte_identical_with_series () =
  let baseline = render_e1 () in
  let outputs =
    List.map
      (fun jobs ->
        with_temp_dir (fun dir ->
            let rendered =
              with_ambient_series_dir dir (fun () ->
                  with_ambient_jobs jobs render_e1)
            in
            let files = series_files dir in
            Alcotest.(check bool)
              (Printf.sprintf "series files written at jobs=%d" jobs)
              true
              (List.length files > 0);
            List.iter
              (fun f ->
                let path = Filename.concat dir f in
                let ic = open_in_bin path in
                let text = really_input_string ic (in_channel_length ic) in
                close_in ic;
                match Series.parse text with
                | Ok _ -> ()
                | Error e -> Alcotest.failf "%s invalid: %s" f e)
              files;
            (rendered, files)))
      [ 1; 2 ]
  in
  List.iteri
    (fun i (rendered, _) ->
      Alcotest.(check string)
        (Printf.sprintf "E1 output byte-identical with series (case %d)" i)
        baseline rendered)
    outputs;
  match outputs with
  | [ (_, f1); (_, f2) ] ->
      Alcotest.(check (list string))
        "same series files at jobs=1 and jobs=2" f1 f2
  | _ -> Alcotest.fail "expected two job counts"

let () =
  Alcotest.run "series"
    [
      ( "recorder",
        [
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "decimation invariant" `Quick test_decimation;
          Alcotest.test_case "want gates the stride" `Quick
            test_want_gates_stride;
          Alcotest.test_case "null no-alloc" `Quick test_null_no_alloc;
        ] );
      ( "export",
        [
          Alcotest.test_case "golden self-validating" `Quick test_golden_export;
          Alcotest.test_case "validator rejections" `Quick
            test_validator_rejections;
        ] );
      ( "engine",
        [
          Alcotest.test_case "pure observation" `Quick test_engine_purity;
          Alcotest.test_case "recorded export validates" `Quick
            test_engine_export_validates;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "E1 byte-identical with ambient series dir"
            `Quick test_e1_byte_identical_with_series;
        ] );
    ]
